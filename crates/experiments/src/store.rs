//! Content-addressed, versioned storage of sweep results.
//!
//! Each measured experiment point persists as one small JSON file at
//! `<root>/store/v1/<hash>.json`, where `<hash>` is the FNV-1a 64-bit
//! digest of the point's canonical configuration key (see
//! [`crate::sweep::SweepJob::cache_key`]). The key covers every parameter
//! that affects the simulation — workload, memory timing, fetch geometry,
//! prefetch policy — so two configurations share a file only if they
//! simulate identically, and resuming a sweep is a per-point file
//! existence check. Bumping the layout or key format means a new `v2/`
//! directory; old stores are simply ignored, never migrated in place.
//!
//! Entries persist the headline statistics (cycles, instructions, fetch
//! traffic). Figure rendering and expectation checking consume only
//! `cycles`, so a point loaded from the store reconstructs an
//! [`ExperimentPoint`](crate::runner::ExperimentPoint) with those headline
//! fields filled in and the remaining statistics zeroed; re-run without
//! `--resume` when full statistics matter.
//!
//! The JSON is hand-rolled (flat object, integer/string values, the
//! standard string escapes) because the workspace deliberately has no
//! external dependencies.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use pipe_core::SimStats;

use crate::runner::ExperimentPoint;

/// Store layout version; bump when the entry format or key scheme
/// changes.
pub const STORE_VERSION: u32 = 1;

/// A typed result-store failure. Only conditions that indicate the store
/// holds *wrong* data (rather than merely missing or unreadable data) are
/// surfaced this way; corrupt, truncated, or version-mismatched entries
/// simply read as absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The entry file for this key's hash records a *different* key — an
    /// FNV collision or a stale entry written under an old key format.
    /// Callers should treat the point as absent (recompute it) and warn,
    /// never trust the entry.
    KeyMismatch {
        /// The key the caller asked for.
        requested: String,
        /// The key recorded inside the entry file.
        found: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::KeyMismatch { requested, found } => write!(
                f,
                "result store key mismatch (hash collision or stale entry): \
                 requested {requested:?}, entry records {found:?}"
            ),
        }
    }
}

impl Error for StoreError {}

/// FNV-1a 64-bit hash of `key` — stable across runs and platforms.
pub fn fnv1a64(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One persisted experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// The canonical configuration key the entry was stored under.
    pub key: String,
    /// Strategy label ("16-16", "conventional", ...).
    pub strategy: String,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Total benchmark cycles — the paper's metric.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Fetch-starved issue stalls.
    pub ifetch_stalls: u64,
    /// Off-chip instruction bytes requested.
    pub bytes_requested: u64,
    /// Instruction-cache hits.
    pub cache_hits: u64,
    /// Instruction-cache misses.
    pub cache_misses: u64,
    /// Wall-clock milliseconds the original simulation took.
    pub wall_ms: u64,
}

impl StoredPoint {
    /// Captures the persisted subset of a measured point.
    pub fn from_point(key: &str, strategy: &str, point: &ExperimentPoint, wall_ms: u64) -> Self {
        StoredPoint {
            key: key.to_string(),
            strategy: strategy.to_string(),
            cache_bytes: point.cache_bytes,
            cycles: point.cycles,
            instructions: point.stats.instructions_issued,
            ifetch_stalls: point.stats.stalls.ifetch,
            bytes_requested: point.stats.fetch.bytes_requested,
            cache_hits: point.stats.fetch.cache_hits,
            cache_misses: point.stats.fetch.cache_misses,
            wall_ms,
        }
    }

    /// Reconstructs an [`ExperimentPoint`] with the headline statistics
    /// filled in (everything else zeroed — see the module docs).
    pub fn to_point(&self) -> ExperimentPoint {
        let mut stats = SimStats {
            cycles: self.cycles,
            instructions_issued: self.instructions,
            ..SimStats::default()
        };
        stats.stalls.ifetch = self.ifetch_stalls;
        stats.fetch.bytes_requested = self.bytes_requested;
        stats.fetch.cache_hits = self.cache_hits;
        stats.fetch.cache_misses = self.cache_misses;
        ExperimentPoint {
            cache_bytes: self.cache_bytes,
            cycles: self.cycles,
            stats,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"version\":{},\"key\":\"{}\",\"strategy\":\"{}\",",
                "\"cache_bytes\":{},\"cycles\":{},\"instructions\":{},",
                "\"ifetch_stalls\":{},\"bytes_requested\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"wall_ms\":{}}}\n"
            ),
            STORE_VERSION,
            json_escape(&self.key),
            json_escape(&self.strategy),
            self.cache_bytes,
            self.cycles,
            self.instructions,
            self.ifetch_stalls,
            self.bytes_requested,
            self.cache_hits,
            self.cache_misses,
            self.wall_ms,
        )
    }

    fn from_json(text: &str) -> Option<StoredPoint> {
        if json_u64(text, "version")? != u64::from(STORE_VERSION) {
            return None;
        }
        Some(StoredPoint {
            key: json_str(text, "key")?,
            strategy: json_str(text, "strategy")?,
            cache_bytes: u32::try_from(json_u64(text, "cache_bytes")?).ok()?,
            cycles: json_u64(text, "cycles")?,
            instructions: json_u64(text, "instructions")?,
            ifetch_stalls: json_u64(text, "ifetch_stalls")?,
            bytes_requested: json_u64(text, "bytes_requested")?,
            cache_hits: json_u64(text, "cache_hits")?,
            cache_misses: json_u64(text, "cache_misses")?,
            wall_ms: json_u64(text, "wall_ms")?,
        })
    }
}

/// Escapes a string for embedding in a JSON string literal: `"` and `\`
/// get backslash escapes, control characters the standard short or
/// `\u00XX` forms.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts an unsigned integer field from a flat JSON object.
fn json_u64(text: &str, field: &str) -> Option<u64> {
    let rest = field_value(text, field)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts and unescapes a string field from a flat JSON object.
/// Malformed input — an unterminated literal, an unknown escape, a bad
/// `\u` sequence, or a raw control character — returns `None` rather than
/// a silently mis-parsed value.
fn json_str(text: &str, field: &str) -> Option<String> {
    let rest = field_value(text, field)?.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c if (c as u32) < 0x20 => return None,
            c => out.push(c),
        }
    }
}

fn field_value<'a>(text: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)?;
    Some(&text[at + needle.len()..])
}

/// A directory of persisted experiment points, keyed by configuration
/// content hash.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the versioned store under `root` — the
    /// entries live at `<root>/store/v<N>/`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        let dir = root.join("store").join(format!("v{STORE_VERSION}"));
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The directory entries are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a64(key)))
    }

    /// Whether a point for `key` has already been computed.
    pub fn contains(&self, key: &str) -> bool {
        self.path_for(key).is_file()
    }

    /// Loads the point stored under `key`, if any. A missing, corrupt,
    /// truncated, or version-mismatched entry reads as `Ok(None)` (the
    /// point is simply recomputed). An entry whose *recorded key* differs
    /// from the requested one — a hash collision or a stale entry from an
    /// old key format — is [`StoreError::KeyMismatch`]: the caller should
    /// warn and recompute, never use the entry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::KeyMismatch`] as above.
    pub fn load(&self, key: &str) -> Result<Option<StoredPoint>, StoreError> {
        let Ok(text) = std::fs::read_to_string(self.path_for(key)) else {
            return Ok(None);
        };
        let Some(entry) = StoredPoint::from_json(&text) else {
            return Ok(None);
        };
        if entry.key != key {
            return Err(StoreError::KeyMismatch {
                requested: key.to_string(),
                found: entry.key,
            });
        }
        Ok(Some(entry))
    }

    /// Persists `entry` under its key, atomically (write to a temp file in
    /// the same directory, then rename), so a killed sweep never leaves a
    /// truncated entry behind. The temp name is unique per process and
    /// call, so concurrent writers — worker threads or separate processes
    /// sharing a store — never interleave on the same temp file; last
    /// rename wins with both entries valid.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, entry: &StoredPoint) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.path_for(&entry.key);
        let tmp = self.dir.join(format!(
            "{:016x}.tmp.{}.{}",
            fnv1a64(&entry.key),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, entry.to_json())?;
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deletes every entry that current code could never load: entries
    /// recording a different format version, entries that fail to parse,
    /// entries whose file name no longer matches the FNV hash of their
    /// recorded key (a stale key format), and leftover `.tmp` files from
    /// interrupted writes. Valid entries are untouched.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the store directory cannot be
    /// listed or a stale file cannot be removed.
    pub fn prune(&self) -> io::Result<PruneReport> {
        let mut report = PruneReport::default();
        for dirent in std::fs::read_dir(&self.dir)? {
            let path = dirent?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.contains(".tmp.") {
                std::fs::remove_file(&path)?;
                report.removed_tmp += 1;
                continue;
            }
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                std::fs::remove_file(&path)?;
                report.removed_corrupt += 1;
                continue;
            };
            match StoredPoint::from_json(&text) {
                None => {
                    let version_mismatch =
                        json_u64(&text, "version").is_some_and(|v| v != u64::from(STORE_VERSION));
                    std::fs::remove_file(&path)?;
                    if version_mismatch {
                        report.removed_version += 1;
                    } else {
                        report.removed_corrupt += 1;
                    }
                }
                Some(entry) => {
                    if name == format!("{:016x}.json", fnv1a64(&entry.key)) {
                        report.kept += 1;
                    } else {
                        std::fs::remove_file(&path)?;
                        report.removed_hash += 1;
                    }
                }
            }
        }
        Ok(report)
    }
}

/// What [`ResultStore::prune`] removed and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Valid entries left in place.
    pub kept: usize,
    /// Entries recording a different format version.
    pub removed_version: usize,
    /// Entries that failed to parse (corrupt or truncated).
    pub removed_corrupt: usize,
    /// Entries whose file name no longer matches their key's hash.
    pub removed_hash: usize,
    /// Leftover temp files from interrupted writes.
    pub removed_tmp: usize,
}

impl PruneReport {
    /// Total files removed.
    pub fn removed(&self) -> usize {
        self.removed_version + self.removed_corrupt + self.removed_hash + self.removed_tmp
    }
}

impl fmt::Display for PruneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kept {} entr{}; removed {} ({} version-mismatched, {} corrupt, \
             {} hash-mismatched, {} temp file{})",
            self.kept,
            if self.kept == 1 { "y" } else { "ies" },
            self.removed(),
            self.removed_version,
            self.removed_corrupt,
            self.removed_hash,
            self.removed_tmp,
            if self.removed_tmp == 1 { "" } else { "s" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str) -> StoredPoint {
        StoredPoint {
            key: key.to_string(),
            strategy: "16-16".to_string(),
            cache_bytes: 64,
            cycles: 123_456,
            instructions: 1000,
            ifetch_stalls: 17,
            bytes_requested: 2048,
            cache_hits: 900,
            cache_misses: 100,
            wall_ms: 42,
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_round_trips() {
        let entry = sample("v1|fetch=pipe:size=64");
        let parsed = StoredPoint::from_json(&entry.to_json()).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn version_mismatch_reads_as_absent() {
        let text = sample("k")
            .to_json()
            .replace("\"version\":1", "\"version\":999");
        assert!(StoredPoint::from_json(&text).is_none());
    }

    #[test]
    fn store_save_load_contains() {
        let dir = std::env::temp_dir().join(format!("pipe-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let entry = sample("v1|fetch=conventional:size=32");
        assert!(!store.contains(&entry.key));
        store.save(&entry).unwrap();
        assert!(store.contains(&entry.key));
        assert_eq!(store.load(&entry.key).unwrap().unwrap(), entry);
        assert_eq!(store.len(), 1);
        // Overwrites are idempotent.
        store.save(&entry).unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strings_with_quotes_and_backslashes_round_trip() {
        let mut entry = sample("v1|wl=\"weird\\path\"|fetch=x");
        entry.strategy = "16-16 \"q\" \\ tab\there\nnl".to_string();
        let parsed = StoredPoint::from_json(&entry.to_json()).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn malformed_strings_are_rejected_not_misparsed() {
        // Unterminated literal.
        assert!(json_str("{\"key\":\"abc", "key").is_none());
        // Unknown escape.
        assert!(json_str("{\"key\":\"a\\qb\"}", "key").is_none());
        // Truncated \u sequence.
        assert!(json_str("{\"key\":\"a\\u00\"}", "key").is_none());
        // Raw control character.
        assert!(json_str("{\"key\":\"a\nb\"}", "key").is_none());
        // Valid escapes parse.
        assert_eq!(
            json_str("{\"key\":\"a\\\"b\\\\c\\u0041\"}", "key").unwrap(),
            "a\"b\\cA"
        );
    }

    #[test]
    fn corrupt_and_truncated_entries_read_as_absent() {
        let dir = std::env::temp_dir().join(format!("pipe-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let entry = sample("v1|corrupt-test");
        store.save(&entry).unwrap();
        let path = store
            .dir()
            .join(format!("{:016x}.json", fnv1a64(&entry.key)));

        // Truncated mid-file.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.load(&entry.key), Ok(None));

        // Arbitrary garbage.
        std::fs::write(&path, "not json at all").unwrap();
        assert_eq!(store.load(&entry.key), Ok(None));

        // Version mismatch.
        std::fs::write(&path, full.replace("\"version\":1", "\"version\":999")).unwrap();
        assert_eq!(store.load(&entry.key), Ok(None));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_mismatch_is_typed_error_not_panic() {
        let dir = std::env::temp_dir().join(format!("pipe-store-collide-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let entry = sample("v1|the-real-key");
        store.save(&entry).unwrap();
        // Simulate a hash collision: copy the entry file to the hash slot
        // of a different key.
        let other = "v1|a-colliding-key";
        std::fs::copy(
            store
                .dir()
                .join(format!("{:016x}.json", fnv1a64(&entry.key))),
            store.dir().join(format!("{:016x}.json", fnv1a64(other))),
        )
        .unwrap();
        match store.load(other) {
            Err(StoreError::KeyMismatch { requested, found }) => {
                assert_eq!(requested, other);
                assert_eq!(found, entry.key);
            }
            other => panic!("expected KeyMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_saves_of_same_key_both_succeed() {
        let dir = std::env::temp_dir().join(format!("pipe-store-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let entry = sample("v1|contended-key");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        store.save(&entry).expect("concurrent save");
                    }
                });
            }
        });
        // Every writer succeeded and the surviving entry is valid.
        assert_eq!(store.load(&entry.key).unwrap().unwrap(), entry);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_only_unloadable_entries() {
        let dir = std::env::temp_dir().join(format!("pipe-store-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();

        // Two valid entries that must survive.
        let keep_a = sample("v1|keep-a");
        let keep_b = sample("v1|keep-b");
        store.save(&keep_a).unwrap();
        store.save(&keep_b).unwrap();

        // A version-mismatched entry (filed under its correct hash).
        let old = sample("v1|old-version");
        let old_json = old.to_json().replace("\"version\":1", "\"version\":999");
        std::fs::write(
            store.dir().join(format!("{:016x}.json", fnv1a64(&old.key))),
            old_json,
        )
        .unwrap();

        // A corrupt entry, an entry filed under the wrong hash, and a
        // stale temp file.
        std::fs::write(store.dir().join("00000000deadbeef.json"), "{garbage").unwrap();
        std::fs::write(
            store.dir().join("0123456789abcdef.json"),
            sample("v1|misplaced").to_json(),
        )
        .unwrap();
        std::fs::write(store.dir().join("0000000000000000.tmp.1.2"), "partial").unwrap();

        let report = store.prune().unwrap();
        assert_eq!(
            report,
            PruneReport {
                kept: 2,
                removed_version: 1,
                removed_corrupt: 1,
                removed_hash: 1,
                removed_tmp: 1,
            }
        );
        assert_eq!(report.removed(), 4);
        assert_eq!(store.load(&keep_a.key).unwrap().unwrap(), keep_a);
        assert_eq!(store.load(&keep_b.key).unwrap().unwrap(), keep_b);
        assert_eq!(store.len(), 2);

        // A second prune is a no-op.
        let again = store.prune().unwrap();
        assert_eq!(again.kept, 2);
        assert_eq!(again.removed(), 0);
        assert!(store.prune().unwrap().to_string().contains("kept 2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_point_reconstructs_headline_stats() {
        let p = sample("k").to_point();
        assert_eq!(p.cycles, 123_456);
        assert_eq!(p.cache_bytes, 64);
        assert_eq!(p.stats.instructions_issued, 1000);
        assert_eq!(p.stats.stalls.ifetch, 17);
        assert_eq!(p.stats.fetch.bytes_requested, 2048);
    }
}
