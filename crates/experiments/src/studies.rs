//! Design studies beyond the paper's printed figures.
//!
//! * [`queue_size_study`] — sweeps IQ and IQB sizes independently at a
//!   fixed cache, the paper's simulation parameters 7 and 8.
//! * [`partial_line_study`] — whole-line fetches (the paper's model)
//!   versus fetching only the needed tail of a line, a natural
//!   critical-word-style refinement the paper leaves unexplored.

use pipe_core::FetchStrategy;
use pipe_icache::{BufferConfig, CacheConfig, ConvPrefetch, ConventionalConfig, PipeFetchConfig};
use pipe_mem::MemConfig;
use pipe_workloads::LivermoreSuite;

use crate::runner::run_point;

/// One cell of the queue-size study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueStudyCell {
    /// IQ size in bytes.
    pub iq_bytes: u32,
    /// IQB size in bytes.
    pub iqb_bytes: u32,
    /// Total benchmark cycles.
    pub cycles: u64,
}

/// Sweeps IQ × IQB sizes (paper parameters 7 and 8) at a fixed cache
/// geometry and memory configuration.
pub fn queue_size_study(
    suite: &LivermoreSuite,
    cache_bytes: u32,
    line_bytes: u32,
    mem: &MemConfig,
    sizes: &[u32],
) -> Vec<QueueStudyCell> {
    let mut cells = Vec::new();
    for &iq in sizes {
        for &iqb in sizes {
            let cfg = PipeFetchConfig {
                iq_bytes: iq,
                iqb_bytes: iqb,
                ..PipeFetchConfig::table2(cache_bytes, line_bytes, iq, iqb)
            };
            let point = run_point(suite.program(), FetchStrategy::Pipe(cfg), mem, cache_bytes);
            cells.push(QueueStudyCell {
                iq_bytes: iq,
                iqb_bytes: iqb,
                cycles: point.cycles,
            });
        }
    }
    cells
}

/// Renders the queue-size study as a matrix (rows: IQ, columns: IQB).
pub fn render_queue_study(cells: &[QueueStudyCell], sizes: &[u32]) -> String {
    let mut out =
        String::from("queue-size study (paper parameters 7 & 8): total kilocycles\nIQ \\ IQB |");
    for &iqb in sizes {
        out.push_str(&format!(" {iqb:>7}B"));
    }
    out.push('\n');
    out.push_str(&format!("---------+{}\n", "-".repeat(9 * sizes.len())));
    for &iq in sizes {
        out.push_str(&format!("{iq:>8}B |"));
        for &iqb in sizes {
            let cell = cells
                .iter()
                .find(|c| c.iq_bytes == iq && c.iqb_bytes == iqb)
                .expect("cell measured");
            out.push_str(&format!(" {:>7.0}k", cell.cycles as f64 / 1000.0));
        }
        out.push('\n');
    }
    out
}

/// One row of the partial-line study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialLineRow {
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Cycles with whole-line fetches (the paper's model).
    pub whole_line_cycles: u64,
    /// Cycles fetching only the needed line tail.
    pub partial_line_cycles: u64,
    /// Off-chip instruction bytes, whole-line.
    pub whole_line_bytes: u64,
    /// Off-chip instruction bytes, partial.
    pub partial_line_bytes: u64,
}

/// Compares whole-line and partial-line fetch policies for the 16-16 PIPE
/// configuration across cache sizes.
pub fn partial_line_study(
    suite: &LivermoreSuite,
    mem: &MemConfig,
    sizes: &[u32],
) -> Vec<PartialLineRow> {
    sizes
        .iter()
        .map(|&cache| {
            let whole = run_point(
                suite.program(),
                FetchStrategy::Pipe(PipeFetchConfig::table2(cache, 16, 16, 16)),
                mem,
                cache,
            );
            let partial_cfg = PipeFetchConfig {
                partial_lines: true,
                ..PipeFetchConfig::table2(cache, 16, 16, 16)
            };
            let partial = run_point(
                suite.program(),
                FetchStrategy::Pipe(partial_cfg),
                mem,
                cache,
            );
            PartialLineRow {
                cache_bytes: cache,
                whole_line_cycles: whole.cycles,
                partial_line_cycles: partial.cycles,
                whole_line_bytes: whole.stats.fetch.bytes_requested,
                partial_line_bytes: partial.stats.fetch.bytes_requested,
            }
        })
        .collect()
}

/// Renders the partial-line study.
pub fn render_partial_line_study(rows: &[PartialLineRow]) -> String {
    let mut out = String::from(
        "partial-line fetch study (PIPE 16-16): cycles and off-chip instruction bytes\n\
         cache     whole-line      partial      whole bytes  partial bytes\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}B  {:>11}  {:>11}  {:>13}  {:>13}\n",
            r.cache_bytes,
            r.whole_line_cycles,
            r.partial_line_cycles,
            r.whole_line_bytes,
            r.partial_line_bytes
        ));
    }
    out
}

/// One row of the Hill prefetch-strategy study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HillStudyRow {
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// Cycles per [`ConvPrefetch`] strategy, in declaration order
    /// (always, on-miss-only, tagged).
    pub cycles: [u64; 3],
}

/// Compares Hill's three conventional-cache prefetch strategies across
/// cache sizes. The paper adopts always-prefetch because Hill found it
/// "consistently provided the best performance"; on PIPE's decoupled,
/// data-heavy workload the strategies land within a few percent of each
/// other, because a prefetch yields the memory port to data while a
/// demand fetch outranks it — see EXPERIMENTS.md for the discussion.
pub fn hill_prefetch_study(
    suite: &LivermoreSuite,
    mem: &MemConfig,
    sizes: &[u32],
) -> Vec<HillStudyRow> {
    let modes = [
        ConvPrefetch::Always,
        ConvPrefetch::OnMissOnly,
        ConvPrefetch::Tagged,
    ];
    sizes
        .iter()
        .map(|&cache| {
            let mut cycles = [0u64; 3];
            for (i, &mode) in modes.iter().enumerate() {
                let fetch = FetchStrategy::Conventional(ConventionalConfig {
                    cache: CacheConfig::new(cache, 16),
                    prefetch: mode,
                });
                cycles[i] = run_point(suite.program(), fetch, mem, cache).cycles;
            }
            HillStudyRow {
                cache_bytes: cache,
                cycles,
            }
        })
        .collect()
}

/// Renders the Hill prefetch study.
pub fn render_hill_study(rows: &[HillStudyRow]) -> String {
    let mut out = String::from(
        "conventional-cache prefetch strategies (Hill): total kilocycles\n\
         cache      always    on-miss     tagged\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}B  {:>8.0}k  {:>8.0}k  {:>8.0}k\n",
            r.cache_bytes,
            r.cycles[0] as f64 / 1000.0,
            r.cycles[1] as f64 / 1000.0,
            r.cycles[2] as f64 / 1000.0,
        ));
    }
    out
}

/// One row of the finite-external-cache study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtCacheStudyRow {
    /// External cache size in bytes (`None` = the paper's infinite cache).
    pub ext_cache_bytes: Option<u32>,
    /// Total benchmark cycles.
    pub cycles: u64,
}

/// Relaxes the paper's "external cache large enough for a 100 % hit rate"
/// assumption (§5): sweeps finite external-cache sizes with a fixed miss
/// penalty and measures the impact on the on-chip comparison point
/// (PIPE 16-16, 64 B on-chip cache).
pub fn external_cache_study(
    suite: &LivermoreSuite,
    base: &MemConfig,
    miss_penalty: u32,
    sizes: &[u32],
) -> Vec<ExtCacheStudyRow> {
    let fetch = FetchStrategy::Pipe(PipeFetchConfig::table2(64, 16, 16, 16));
    let mut rows = vec![ExtCacheStudyRow {
        ext_cache_bytes: None,
        cycles: run_point(suite.program(), fetch, base, 64).cycles,
    }];
    for &size in sizes {
        let mem = MemConfig {
            external_cache: Some(pipe_mem::ExternalCacheConfig {
                size_bytes: size,
                line_bytes: 64,
                miss_penalty,
            }),
            ..*base
        };
        rows.push(ExtCacheStudyRow {
            ext_cache_bytes: Some(size),
            cycles: run_point(suite.program(), fetch, &mem, 64).cycles,
        });
    }
    rows
}

/// Renders the external-cache study.
pub fn render_ext_cache_study(rows: &[ExtCacheStudyRow], miss_penalty: u32) -> String {
    let mut out = format!(
        "finite external cache study (PIPE 16-16, 64B on-chip, +{miss_penalty} cycle misses)\n\
         external cache        cycles\n"
    );
    for r in rows {
        let label = match r.ext_cache_bytes {
            None => "infinite (paper)".to_string(),
            Some(b) if b >= 1024 => format!("{}KB", b / 1024),
            Some(b) => format!("{b}B"),
        };
        out.push_str(&format!("{label:<18}  {:>10}\n", r.cycles));
    }
    out
}

/// One row of the memory-speed sensitivity study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessStudyRow {
    /// Memory access time in cycles.
    pub access_cycles: u32,
    /// Conventional-cache cycles.
    pub conventional: u64,
    /// PIPE 16-16 cycles.
    pub pipe: u64,
}

impl AccessStudyRow {
    /// PIPE's speedup over the conventional cache at this access time.
    pub fn speedup(&self) -> f64 {
        self.conventional as f64 / self.pipe as f64
    }
}

/// Sweeps the external memory access time (paper simulation parameter 4)
/// at a fixed cache size, comparing the conventional cache against PIPE
/// 16-16. Shows how the PIPE advantage grows as memory gets relatively
/// slower — the paper's central technology-scaling argument.
pub fn access_sweep_study(
    suite: &LivermoreSuite,
    cache_bytes: u32,
    bus: u32,
    accesses: &[u32],
) -> Vec<AccessStudyRow> {
    accesses
        .iter()
        .map(|&access| {
            let mem = MemConfig {
                access_cycles: access,
                in_bus_bytes: bus,
                ..MemConfig::default()
            };
            let conv = run_point(
                suite.program(),
                FetchStrategy::conventional(CacheConfig::new(cache_bytes, 16)),
                &mem,
                cache_bytes,
            );
            let pipe = run_point(
                suite.program(),
                FetchStrategy::Pipe(PipeFetchConfig::table2(cache_bytes, 16, 16, 16)),
                &mem,
                cache_bytes,
            );
            AccessStudyRow {
                access_cycles: access,
                conventional: conv.cycles,
                pipe: pipe.cycles,
            }
        })
        .collect()
}

/// Renders the access-time sweep.
pub fn render_access_study(rows: &[AccessStudyRow], cache_bytes: u32) -> String {
    let mut out = format!(
        "memory-speed sensitivity ({cache_bytes}B cache, paper parameter 4)\n\
         access  conventional      PIPE 16-16   speedup\n"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}  {:>12}  {:>14}  {:>7.2}x\n",
            r.access_cycles,
            r.conventional,
            r.pipe,
            r.speedup()
        ));
    }
    out
}

/// One row of the Rau & Rossman prefetch-buffer study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferStudyRow {
    /// Number of prefetch buffers.
    pub buffers: u32,
    /// Total benchmark cycles.
    pub cycles: u64,
    /// Off-chip instruction bytes requested.
    pub bytes_requested: u64,
}

/// Sweeps the prefetch-buffer count (paper §2.1's Rau & Rossman model:
/// decode takes instructions straight from sequential prefetch buffers).
/// Reproduces their trade-off: more buffers improve performance, at the
/// cost of more memory traffic.
pub fn buffer_study(
    suite: &LivermoreSuite,
    mem: &MemConfig,
    counts: &[u32],
    cache: Option<CacheConfig>,
) -> Vec<BufferStudyRow> {
    counts
        .iter()
        .map(|&buffers| {
            let fetch = FetchStrategy::Buffers(BufferConfig { buffers, cache });
            let point = run_point(suite.program(), fetch, mem, buffers * 4);
            BufferStudyRow {
                buffers,
                cycles: point.cycles,
                bytes_requested: point.stats.fetch.bytes_requested,
            }
        })
        .collect()
}

/// Renders the prefetch-buffer study.
pub fn render_buffer_study(rows: &[BufferStudyRow]) -> String {
    let mut out = String::from(
        "prefetch-buffer study (Rau & Rossman): cycles and off-chip traffic\n\
         buffers       cycles    bytes requested\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7}  {:>11}  {:>17}\n",
            r.buffers, r.cycles, r.bytes_requested
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipe_isa::InstrFormat;

    fn small_suite() -> LivermoreSuite {
        LivermoreSuite::build_scaled(InstrFormat::Fixed32, 20).unwrap()
    }

    #[test]
    fn queue_study_covers_grid() {
        let suite = small_suite();
        let sizes = [8u32, 16];
        let cells = queue_size_study(&suite, 64, 16, &MemConfig::default(), &sizes);
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.cycles > 0));
        let text = render_queue_study(&cells, &sizes);
        assert!(text.contains("IQ \\ IQB"));
    }

    #[test]
    fn finite_external_cache_monotone() {
        let suite = small_suite();
        let base = MemConfig {
            access_cycles: 3,
            in_bus_bytes: 8,
            ..MemConfig::default()
        };
        let rows = external_cache_study(&suite, &base, 10, &[4096, 65536]);
        assert_eq!(rows.len(), 3);
        let infinite = rows[0].cycles;
        let small = rows[1].cycles;
        let big = rows[2].cycles;
        assert!(small >= big, "bigger external cache can't be slower");
        assert!(big >= infinite, "finite can't beat the paper's assumption");
        assert!(small > infinite, "a small external cache must cost cycles");
        assert!(render_ext_cache_study(&rows, 10).contains("infinite"));
    }

    #[test]
    fn pipe_advantage_grows_with_memory_latency() {
        let suite = small_suite();
        let rows = access_sweep_study(&suite, 32, 8, &[1, 3, 6]);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[2].speedup() > rows[0].speedup(),
            "speedup at access 6 ({:.2}) !> at access 1 ({:.2})",
            rows[2].speedup(),
            rows[0].speedup()
        );
        assert!(render_access_study(&rows, 32).contains("speedup"));
    }

    #[test]
    fn more_buffers_better_performance_more_traffic() {
        // Rau & Rossman's trade-off, on a pipelined memory where multiple
        // outstanding prefetches actually overlap.
        let suite = small_suite();
        let mem = MemConfig {
            access_cycles: 4,
            in_bus_bytes: 4,
            pipelined: true,
            ..MemConfig::default()
        };
        let rows = buffer_study(&suite, &mem, &[1, 8], None);
        assert!(
            rows[1].cycles < rows[0].cycles,
            "8 buffers {} !< 1 buffer {}",
            rows[1].cycles,
            rows[0].cycles
        );
        assert!(
            rows[1].bytes_requested >= rows[0].bytes_requested,
            "traffic must not shrink with more buffers"
        );
        assert!(render_buffer_study(&rows).contains("buffers"));
    }

    #[test]
    fn hill_prefetch_strategies_are_close_on_this_workload() {
        // Hill found always-prefetch consistently best in an
        // instruction-side-only study; on PIPE's decoupled, data-heavy
        // workload the three strategies land within a few percent of each
        // other (a prefetch yields the bus to data, while a demand fetch
        // outranks it under instruction-first arbitration — so launching
        // earlier at lower priority roughly cancels out). We check the
        // bounded spread rather than a strict ordering.
        let suite = small_suite();
        let mem = MemConfig {
            access_cycles: 6,
            in_bus_bytes: 8,
            ..MemConfig::default()
        };
        let rows = hill_prefetch_study(&suite, &mem, &[64]);
        let [always, on_miss, tagged] = rows[0].cycles;
        let max = always.max(on_miss).max(tagged) as f64;
        let min = always.min(on_miss).min(tagged) as f64;
        assert!(
            max / min < 1.10,
            "spread too wide: {always} {on_miss} {tagged}"
        );
        assert!(render_hill_study(&rows).contains("64B"));
    }

    #[test]
    fn partial_lines_reduce_traffic() {
        let suite = small_suite();
        let mem = MemConfig {
            access_cycles: 6,
            in_bus_bytes: 4,
            ..MemConfig::default()
        };
        let rows = partial_line_study(&suite, &mem, &[32]);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].partial_line_bytes <= rows[0].whole_line_bytes,
            "partial fetches cannot request more bytes"
        );
        let text = render_partial_line_study(&rows);
        assert!(text.contains("32B"));
    }
}
