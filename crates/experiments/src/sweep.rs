//! The parallel sweep engine.
//!
//! A [`SweepSpec`] declares an experiment sweep — which strategies, which
//! cache sizes, which memory timing and workload. [`SweepSpec::expand`]
//! turns it into a flat, index-ordered list of [`SweepJob`]s, and a
//! [`SweepRunner`] executes those jobs across scoped worker threads
//! (`--jobs N`), writing each result into its expansion-index slot so the
//! collected series are **bit-identical to a serial run** regardless of
//! thread count or scheduling: each simulation is independent and
//! deterministic, and only the collection order could differ — which the
//! index-addressed slots pin down.
//!
//! Because a spec has exactly one workload, every job shares the same
//! predecoded program; the runner therefore groups pending jobs into
//! same-workload batches (up to [`SweepRunner::batch`] lanes, capped so
//! every worker thread still gets work) and dispatches each batch through
//! the batched kernel ([`pipe_core::run_batch`]), which drives all lanes
//! over the shared program in one pass with stall fast-forwarding.
//! Singleton groups — and trace workloads, which replay through a
//! different engine — fall back to the scalar path. Both paths produce
//! bit-identical statistics, so batching is purely a throughput choice.
//!
//! With a [`ResultStore`] attached and resume enabled, each job's
//! canonical configuration key (see [`SweepJob::key`]) is checked against
//! the store first; previously computed points are loaded instead of
//! re-simulated, so a re-run after an interrupted or completed sweep only
//! pays for the missing points.
//!
//! Execution is **fault-tolerant**: each job runs under `catch_unwind`,
//! so a panicking or erroring point becomes a [`FailedJob`] recorded in
//! the [`SweepOutcome`] while every other job completes; store-write
//! failures are retried with backoff and then degrade the run to
//! store-less execution instead of aborting it. [`SweepRunner::strict`]
//! restores fail-fast semantics ([`SweepRunner::try_run`] returns
//! [`SweepError`] carrying the partial outcome). With an events root
//! attached ([`SweepRunner::events`]), the run appends a structured JSONL
//! event log (see [`crate::events`]).
//!
//! ```no_run
//! use pipe_experiments::sweep::{SweepRunner, SweepSpec};
//!
//! let spec = SweepSpec::figure("5b");
//! let outcome = SweepRunner::new().jobs(4).run(&spec);
//! assert_eq!(outcome.series.len(), 5);
//! ```

use std::error::Error;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipe_core::FetchStrategy;
use pipe_icache::PrefetchPolicy;
use pipe_isa::{DecodedProgram, InstrFormat, Program};
use pipe_mem::MemConfig;
use pipe_workloads::LivermoreSuite;

use crate::backoff::{BackoffPolicy, Retry};
use crate::events::RunLog;
use crate::figures::{figure_mem, Series};
use crate::matrix::{sweep_sizes, StrategyKind, ALL_STRATEGIES};
use crate::runner::{try_run_point_decoded, try_run_points_batched, ExperimentPoint};
use crate::store::{ResultStore, StoredPoint};

/// The benchmark a sweep runs. Declarative (rather than a prebuilt
/// [`Program`]) so the workload participates in the configuration key
/// that content-addresses stored results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// The paper's 14-kernel Livermore benchmark. `scale` divides each
    /// kernel's iteration count (1 = the paper's full 150,575-instruction
    /// run; larger values give proportionally faster sweeps for smoke
    /// tests).
    Livermore {
        /// Instruction format to assemble under.
        format: InstrFormat,
        /// Iteration-count divisor (≥ 1).
        scale: u32,
    },
    /// A synthetic straight-line loop (`pipe_workloads::synthetic`).
    TightLoop {
        /// ALU instructions in the loop body.
        body: u32,
        /// Loop trips.
        trips: u16,
        /// Instruction format to assemble under.
        format: InstrFormat,
    },
    /// A pre-recorded instruction trace (binary `.ptr` or plain-text
    /// addresses), replayed through each job's fetch engine instead of
    /// running the functional core (see [`crate::tracerun`]). The key
    /// fragment is the FNV-1a 64 digest of the file's bytes, so stored
    /// results are invalidated whenever the trace content changes.
    Trace {
        /// Path to the trace file.
        path: String,
        /// Content hash of the trace file's bytes.
        fnv: u64,
    },
    /// A program from the bundled assembly library (`programs/`),
    /// assembled with `pipe-asm`. The key fragment includes the FNV-1a 64
    /// digest of the source text, so stored results are invalidated
    /// whenever the program is edited.
    Asm {
        /// Library program name (`pipe_asm::library`).
        name: String,
        /// Content hash of the assembly source text.
        fnv: u64,
        /// Instruction format to assemble under.
        format: InstrFormat,
    },
}

impl WorkloadSpec {
    /// The paper's benchmark at full scale.
    pub fn livermore() -> WorkloadSpec {
        WorkloadSpec::Livermore {
            format: InstrFormat::Fixed32,
            scale: 1,
        }
    }

    /// A trace-driven workload: content-hashes the trace file at `path`
    /// and validates that it can be loaded and its backing program
    /// rebuilt (see [`crate::tracerun::trace_program`]).
    ///
    /// # Errors
    ///
    /// A user-facing message when the file cannot be read, decoded, or
    /// its backing program reconstructed.
    pub fn trace(path: &Path) -> Result<WorkloadSpec, String> {
        crate::tracerun::trace_program(path)?;
        let fnv = pipe_trace::file_fnv(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(WorkloadSpec::Trace {
            path: path.to_string_lossy().into_owned(),
            fnv,
        })
    }

    /// A workload from the bundled assembly library: validates that the
    /// program exists and assembles, and content-hashes its source.
    ///
    /// # Errors
    ///
    /// A user-facing message when `name` is not a bundled program or the
    /// source fails to assemble under `format`.
    pub fn asm(name: &str, format: InstrFormat) -> Result<WorkloadSpec, String> {
        let lib = pipe_asm::find_program(name).ok_or_else(|| {
            format!(
                "unknown asm program `{name}` (available: {})",
                pipe_asm::library::names().collect::<Vec<_>>().join(", ")
            )
        })?;
        pipe_asm::Assembler::new(format)
            .assemble(lib.source)
            .map_err(|e| format!("{name} does not assemble: {e}"))?;
        Ok(WorkloadSpec::Asm {
            name: name.to_string(),
            fnv: crate::store::fnv1a64(lib.source),
            format,
        })
    }

    /// Assembles the workload (for a trace, the program backing the
    /// trace).
    ///
    /// # Panics
    ///
    /// Panics if the built-in benchmark fails to assemble (a bug, not a
    /// configuration error), or if a trace file validated by
    /// [`WorkloadSpec::trace`] has since become unloadable.
    pub fn build(&self) -> Program {
        match self {
            WorkloadSpec::Livermore { format, scale } => {
                let suite = if *scale <= 1 {
                    LivermoreSuite::build(*format)
                } else {
                    LivermoreSuite::build_scaled(*format, *scale)
                };
                suite
                    .expect("livermore benchmark assembles")
                    .program()
                    .clone()
            }
            WorkloadSpec::TightLoop {
                body,
                trips,
                format,
            } => pipe_workloads::synthetic::tight_loop(*body, *trips, *format),
            WorkloadSpec::Trace { path, .. } => crate::tracerun::trace_program(Path::new(path))
                .expect("trace workload validated at construction"),
            WorkloadSpec::Asm { name, format, .. } => {
                let lib =
                    pipe_asm::find_program(name).expect("asm workload validated at construction");
                pipe_asm::Assembler::new(*format)
                    .assemble(lib.source)
                    .expect("asm workload validated at construction")
            }
        }
    }

    /// Canonical key fragment naming this workload.
    pub fn key(&self) -> String {
        match self {
            WorkloadSpec::Livermore { format, scale } => {
                format!("livermore:format={format},scale={scale}")
            }
            WorkloadSpec::TightLoop {
                body,
                trips,
                format,
            } => format!("tight-loop:body={body},trips={trips},format={format}"),
            WorkloadSpec::Trace { fnv, .. } => format!("trace:fnv={fnv:016x}"),
            WorkloadSpec::Asm { name, fnv, format } => {
                format!("asm:name={name},fnv={fnv:016x},format={format}")
            }
        }
    }
}

/// Canonical key fragment for a memory configuration: every field, in a
/// fixed order. Also used as the `mem_key` of recorded trace headers.
pub fn mem_key(mem: &MemConfig) -> String {
    let ext = match &mem.external_cache {
        Some(e) => format!(
            "size={},line={},penalty={}",
            e.size_bytes, e.line_bytes, e.miss_penalty
        ),
        None => "none".to_string(),
    };
    // The D-cache fragment appears only when one is configured, so every
    // key minted before the D-cache existed stays byte-identical.
    let dcache = match &mem.d_cache {
        Some(d) => format!(
            ",dcache=size={},line={},ways={}",
            d.size_bytes, d.line_bytes, d.ways
        ),
        None => String::new(),
    };
    format!(
        "access={},pipelined={},bus_in={},bus_out={},priority={},fpu={},ext={}{}",
        mem.access_cycles,
        mem.pipelined,
        mem.in_bus_bytes,
        mem.out_bus_bytes,
        mem.priority,
        mem.fpu_latency,
        ext,
        dcache
    )
}

/// A declarative sweep: the cross product of strategies × cache sizes
/// under one memory configuration and workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Identifier shown in progress output and reports ("fig5b", ...).
    pub id: String,
    /// Strategies, in presentation order.
    pub strategies: Vec<StrategyKind>,
    /// Cache sizes in bytes, ascending.
    pub cache_sizes: Vec<u32>,
    /// External memory parameters.
    pub mem: MemConfig,
    /// Off-chip prefetch gating for the PIPE strategies.
    pub policy: PrefetchPolicy,
    /// The benchmark to run.
    pub workload: WorkloadSpec,
}

impl SweepSpec {
    /// The sweep behind one of the paper's figure panels (`"4a"`–`"6b"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown figure id.
    pub fn figure(id: &str) -> SweepSpec {
        let (mem, _) = figure_mem(id);
        SweepSpec {
            id: format!("fig{id}"),
            strategies: ALL_STRATEGIES.to_vec(),
            cache_sizes: sweep_sizes().to_vec(),
            mem,
            policy: PrefetchPolicy::TruePrefetch,
            workload: WorkloadSpec::livermore(),
        }
    }

    /// Expands the spec into index-ordered jobs (strategy-major, cache
    /// size ascending). Points whose geometry is invalid for a strategy
    /// (cache smaller than the line) are skipped, matching the figures.
    pub fn expand(&self) -> Vec<SweepJob> {
        let wl = self.workload.key();
        let mem = mem_key(&self.mem);
        let mut jobs = Vec::new();
        for &kind in &self.strategies {
            for &size in &self.cache_sizes {
                if let Some(fetch) = kind.fetch_for(size, self.policy) {
                    jobs.push(SweepJob {
                        index: jobs.len(),
                        kind,
                        cache_bytes: size,
                        key: format!("v1|wl={wl}|mem={mem}|fetch={}", fetch.cache_key()),
                        fetch,
                    });
                }
            }
        }
        jobs
    }
}

/// One executable point of an expanded sweep.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Position in the expansion (and in the result slots).
    pub index: usize,
    /// The strategy this point belongs to.
    pub kind: StrategyKind,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// The fully resolved fetch configuration.
    pub fetch: FetchStrategy,
    key: String,
}

impl SweepJob {
    /// The canonical configuration key this point is stored under: it
    /// covers workload, memory timing, and the complete fetch geometry,
    /// so equal keys simulate identically.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// One completed point with its provenance.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The measured (or store-loaded) point.
    pub point: ExperimentPoint,
    /// Wall-clock time the simulation took (zero when loaded from the
    /// store).
    pub wall: Duration,
    /// Whether the point was loaded from the result store.
    pub cached: bool,
}

/// Why one job of a sweep failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The worker panicked while simulating this point (message is the
    /// panic payload).
    Panic(String),
    /// The simulator reported a typed error (decode, timeout, ...).
    Sim(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panic(m) => write!(f, "worker panicked: {m}"),
            JobError::Sim(m) => write!(f, "simulation error: {m}"),
        }
    }
}

impl Error for JobError {}

/// One job that did not produce a point, with enough identity to re-run
/// or report it.
#[derive(Debug, Clone)]
pub struct FailedJob {
    /// Position in the expansion.
    pub index: usize,
    /// The strategy the point belonged to.
    pub kind: StrategyKind,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// The canonical configuration key of the point.
    pub key: String,
    /// What went wrong.
    pub error: JobError,
}

impl fmt::Display for FailedJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {}B (job {}): {}",
            self.kind.label(),
            self.cache_bytes,
            self.index,
            self.error
        )
    }
}

/// A sweep-level failure. Only strict (fail-fast) execution surfaces one;
/// the default mode records failures in the outcome instead.
#[derive(Debug)]
pub enum SweepError {
    /// Strict mode: at least one job failed. The boxed partial outcome
    /// preserves every completed series point plus the failed-job list.
    Strict(Box<SweepOutcome>),
}

impl SweepError {
    /// The partial outcome of the aborted sweep.
    pub fn partial(&self) -> &SweepOutcome {
        match self {
            SweepError::Strict(outcome) => outcome,
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Strict(outcome) => {
                write!(
                    f,
                    "strict sweep aborted: {} job(s) failed",
                    outcome.failed.len()
                )?;
                if let Some(first) = outcome.failed.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SweepError {}

/// The result of running a sweep — possibly partial: jobs listed in
/// `failed` have no point in `series` (renderers mark them as missing
/// rather than zero).
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One series per strategy, in spec order — the same shape the serial
    /// figure path produces, minus any failed points.
    pub series: Vec<Series>,
    /// Points actually simulated (successfully) this run.
    pub computed: usize,
    /// Points satisfied from the result store.
    pub cached: usize,
    /// Jobs that failed, in expansion order.
    pub failed: Vec<FailedJob>,
    /// Lane widths of the same-workload batches the pending (not
    /// store-satisfied) jobs were grouped into, in dispatch order.
    /// Width-1 groups ran on the scalar path.
    pub batches: Vec<usize>,
    /// Whether store writes failed persistently and the run degraded to
    /// store-less execution.
    pub store_degraded: bool,
    /// Where the JSONL event log was written, when events were enabled.
    pub events_path: Option<PathBuf>,
    /// Total wall-clock time of the sweep.
    pub wall: Duration,
}

impl SweepOutcome {
    /// Whether every expanded job produced a point.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Test/diagnostic fault injection: make specific jobs panic or their
/// store writes fail, to exercise the fault-tolerant paths end to end
/// (unit tests, the CI smoke test, and manual `--inject-*` runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Expansion indices whose execution panics.
    pub panic_jobs: Vec<usize>,
    /// Expansion indices whose store writes fail (every attempt).
    pub store_fail_jobs: Vec<usize>,
}

impl FaultInjection {
    /// Whether no fault is injected (the default).
    pub fn is_empty(&self) -> bool {
        self.panic_jobs.is_empty() && self.store_fail_jobs.is_empty()
    }
}

/// Shared per-run state handed to every worker: the (optional) event
/// log, the store-health flag that flips when writes are exhausted, and
/// the strict-mode cancellation flag.
struct RunState<'a> {
    log: Option<&'a RunLog>,
    store_ok: &'a AtomicBool,
    cancel: &'a AtomicBool,
}

/// Default maximum lanes per batched simulation call.
const DEFAULT_BATCH: usize = 8;

/// Executes [`SweepSpec`]s across worker threads with optional
/// store-backed resume, structured event logging, and progress
/// reporting. Fault-tolerant by default; see [`SweepRunner::strict`].
#[derive(Debug)]
pub struct SweepRunner {
    jobs: usize,
    batch: usize,
    store: Option<ResultStore>,
    resume: bool,
    progress: bool,
    strict: bool,
    events_root: Option<PathBuf>,
    inject: FaultInjection,
}

impl Default for SweepRunner {
    fn default() -> SweepRunner {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// A serial runner with no store and no progress output.
    pub fn new() -> SweepRunner {
        SweepRunner {
            jobs: 1,
            batch: DEFAULT_BATCH,
            store: None,
            resume: false,
            progress: false,
            strict: false,
            events_root: None,
            inject: FaultInjection::default(),
        }
    }

    /// Sets the worker-thread count (0 is treated as 1).
    pub fn jobs(mut self, jobs: usize) -> SweepRunner {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the maximum lanes per batched simulation call (default 8).
    /// `1` disables batching: every point runs on the scalar path. The
    /// effective width is further capped so every worker thread still
    /// gets at least one batch.
    pub fn batch(mut self, width: usize) -> SweepRunner {
        self.batch = width.max(1);
        self
    }

    /// Attaches a result store; every computed point is persisted to it.
    pub fn store(mut self, store: ResultStore) -> SweepRunner {
        self.store = Some(store);
        self
    }

    /// When a store is attached, load previously computed points instead
    /// of re-simulating them.
    pub fn resume(mut self, resume: bool) -> SweepRunner {
        self.resume = resume;
        self
    }

    /// Emit per-point progress lines (with wall time) to stderr.
    pub fn progress(mut self, progress: bool) -> SweepRunner {
        self.progress = progress;
        self
    }

    /// Restores fail-fast semantics: the first failed job cancels the
    /// remaining work and [`try_run`](SweepRunner::try_run) returns
    /// [`SweepError::Strict`] with the partial outcome. In-flight jobs
    /// still finish (and persist to the store), so a strict abort loses
    /// no completed work.
    pub fn strict(mut self, strict: bool) -> SweepRunner {
        self.strict = strict;
        self
    }

    /// Writes a structured JSONL event log to
    /// `<root>/events/<spec id>.jsonl` for each run (see
    /// [`crate::events`]).
    pub fn events(mut self, root: impl Into<PathBuf>) -> SweepRunner {
        self.events_root = Some(root.into());
        self
    }

    /// Installs fault injection (test/diagnostic hook; see
    /// [`FaultInjection`]).
    pub fn inject(mut self, inject: FaultInjection) -> SweepRunner {
        self.inject = inject;
        self
    }

    /// Runs the sweep fault-tolerantly: failed jobs are recorded in the
    /// outcome's `failed` list and every other job completes.
    ///
    /// # Panics
    ///
    /// Panics only when the runner is [`strict`](SweepRunner::strict) and
    /// a job failed — strict callers should use
    /// [`try_run`](SweepRunner::try_run) instead.
    pub fn run(&self, spec: &SweepSpec) -> SweepOutcome {
        match self.try_run(spec) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e} (use try_run to handle strict sweep failures)"),
        }
    }

    /// Runs the sweep.
    ///
    /// In the default fault-tolerant mode this always returns `Ok`: a
    /// panicking or erroring job becomes a [`FailedJob`] in the outcome,
    /// a persistently failing store write degrades the run to store-less
    /// execution (after bounded retry with backoff), and an untrusted
    /// store entry (key mismatch) is recomputed with a warning. Under
    /// [`strict`](SweepRunner::strict), the first failure cancels the
    /// remaining jobs and surfaces as [`SweepError::Strict`] carrying the
    /// partial outcome.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Strict`] as described above.
    pub fn try_run(&self, spec: &SweepSpec) -> Result<SweepOutcome, SweepError> {
        let started = Instant::now();
        let jobs = spec.expand();
        let total = jobs.len();
        // Decode the workload once; every job (serial or threaded) shares
        // the same predecoded image instead of re-decoding per point.
        let program = Arc::new(DecodedProgram::new(spec.workload.build()));

        let log = self.open_log(spec);
        if let Some(log) = &log {
            log.run_start(total, self.jobs, self.strict);
        }

        // Index-addressed result slots: the write order never affects the
        // collected series.
        let mut slots: Vec<Option<PointOutcome>> = (0..total).map(|_| None).collect();
        let mut failed: Vec<FailedJob> = Vec::new();

        // Satisfy what we can from the store first (cheap file reads).
        let mut pending: Vec<&SweepJob> = Vec::new();
        for job in &jobs {
            match self.load_cached(spec, job, log.as_ref()) {
                Some(entry) => {
                    let cycles = entry.stats.cycles;
                    self.report(spec, job, cycles, Duration::ZERO, true, total);
                    if let Some(log) = &log {
                        log.job_cached(job.index, job.kind.label(), job.cache_bytes, cycles);
                    }
                    slots[job.index] = Some(PointOutcome {
                        point: entry.to_point(),
                        wall: Duration::ZERO,
                        cached: true,
                    });
                }
                None => pending.push(job),
            }
        }
        let cached = total - pending.len();

        // Set once store writes are exhausted; the rest of the run is
        // store-less.
        let store_ok = AtomicBool::new(true);
        // Set on the first failure under strict: workers stop picking up
        // new jobs but finish (and persist) the ones in flight.
        let cancel = AtomicBool::new(false);
        let run = RunState {
            log: log.as_ref(),
            store_ok: &store_ok,
            cancel: &cancel,
        };

        // Group the pending (same-workload) jobs into lockstep batches
        // for the batched kernel. The width is capped so every worker
        // thread still gets a batch: lanes amortize the shared program,
        // threads amortize cores. Trace workloads replay through a
        // different engine and always run scalar.
        let width = match spec.workload {
            WorkloadSpec::Trace { .. } => 1,
            _ => {
                let fair = pending.len().div_ceil(self.jobs.max(1)).max(1);
                self.batch.clamp(1, fair)
            }
        };
        let batches: Vec<&[&SweepJob]> = pending.chunks(width).collect();
        let batch_widths: Vec<usize> = batches.iter().map(|b| b.len()).collect();

        let workers = self.jobs.min(batches.len().max(1));
        if workers <= 1 {
            for batch in &batches {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                for (index, result) in self.execute_batch(spec, batch, &program, total, 0, &run) {
                    match result {
                        Ok(outcome) => slots[index] = Some(outcome),
                        Err(error) => {
                            failed.push(failed_job(&jobs[index], error));
                            if self.strict {
                                cancel.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        } else {
            // Per-job results flow back over an mpsc channel, so a worker
            // that dies mid-job can never poison shared state: its result
            // is simply the error it sent (or nothing, which leaves the
            // slot empty).
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Result<PointOutcome, JobError>)>();
            let batches = &batches;
            let program = &program;
            let (cancel_ref, run_ref) = (&cancel, &run);
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        if cancel_ref.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(batch) = batches.get(i) else { break };
                        let results =
                            self.execute_batch(spec, batch, program, total, worker, run_ref);
                        for pair in results {
                            if tx.send(pair).is_err() {
                                return;
                            }
                        }
                    });
                }
                drop(tx);
                for (index, result) in rx {
                    match result {
                        Ok(outcome) => slots[index] = Some(outcome),
                        Err(error) => {
                            failed.push(failed_job(&jobs[index], error));
                            if self.strict {
                                cancel.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        failed.sort_by_key(|f| f.index);

        // Collect into series in expansion order: strategy-major, size
        // ascending — identical to the serial path. Failed (or, under a
        // strict abort, never-started) jobs simply have no point;
        // renderers mark them as missing.
        let series = spec
            .strategies
            .iter()
            .map(|&kind| Series {
                label: kind.label().to_string(),
                kind,
                points: jobs
                    .iter()
                    .filter(|j| j.kind == kind)
                    .filter_map(|j| slots[j.index].as_ref().map(|o| o.point.clone()))
                    .collect(),
            })
            .collect();

        let computed = slots.iter().flatten().filter(|o| !o.cached).count();
        let wall = started.elapsed();
        if self.progress {
            let widths: Vec<String> = batch_widths.iter().map(|w| w.to_string()).collect();
            eprintln!(
                "[{}] sweep done: {} computed, {} cached, {} failed in {:.2}s; \
                 batch widths [{}]",
                spec.id,
                computed,
                cached,
                failed.len(),
                wall.as_secs_f64(),
                widths.join(", "),
            );
        }
        let outcome = SweepOutcome {
            series,
            computed,
            cached,
            store_degraded: !store_ok.load(Ordering::Relaxed),
            events_path: log.as_ref().map(|l| l.path().to_path_buf()),
            failed,
            batches: batch_widths,
            wall,
        };
        if let Some(log) = &log {
            log.run_finish(
                outcome.computed,
                outcome.cached,
                outcome.failed.len(),
                outcome.wall.as_millis(),
            );
        }
        if self.strict && !outcome.is_complete() {
            return Err(SweepError::Strict(Box::new(outcome)));
        }
        Ok(outcome)
    }

    /// Opens the per-run event log, if an events root is configured.
    /// Best-effort: a failure to open warns and disables logging.
    fn open_log(&self, spec: &SweepSpec) -> Option<RunLog> {
        let root = self.events_root.as_ref()?;
        match RunLog::create(root, &spec.id) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!(
                    "[{}] warning: cannot create event log under {}: {e}; \
                     continuing without events",
                    spec.id,
                    root.display()
                );
                None
            }
        }
    }

    /// Resume lookup for one job. An untrusted entry (key mismatch) warns
    /// and reads as absent so the point is recomputed.
    fn load_cached(
        &self,
        spec: &SweepSpec,
        job: &SweepJob,
        log: Option<&RunLog>,
    ) -> Option<StoredPoint> {
        if !self.resume {
            return None;
        }
        match self.store.as_ref()?.load(job.key()) {
            Ok(entry) => entry,
            Err(e) => {
                eprintln!(
                    "[{}] warning: {e}; recomputing {} @ {}B",
                    spec.id,
                    job.kind.label(),
                    job.cache_bytes
                );
                if let Some(log) = log {
                    log.store_mismatch(job.index, &e.to_string());
                }
                None
            }
        }
    }

    /// Runs one same-workload batch through the batched kernel,
    /// returning `(job index, result)` pairs. Singleton batches use the
    /// scalar path directly. Each lane is charged an equal share of the
    /// batch's wall time — the cost the point actually added to the
    /// sweep — in progress output and the result store. A panic inside
    /// the batched call poisons all of its lanes, so the fallback
    /// retries each point alone under the scalar [`execute`]
    /// (SweepRunner::execute), where only the offending job fails.
    fn execute_batch(
        &self,
        spec: &SweepSpec,
        batch: &[&SweepJob],
        program: &Arc<DecodedProgram>,
        total: usize,
        worker: usize,
        run: &RunState<'_>,
    ) -> Vec<(usize, Result<PointOutcome, JobError>)> {
        if batch.len() == 1 {
            let job = batch[0];
            return vec![(
                job.index,
                self.execute(spec, job, program, total, worker, run),
            )];
        }
        if let Some(log) = run.log {
            for job in batch {
                log.job_start(job.index, job.kind.label(), job.cache_bytes, worker);
            }
        }
        let inject_panic = batch
            .iter()
            .any(|j| self.inject.panic_jobs.contains(&j.index));
        let lanes: Vec<(FetchStrategy, u32)> =
            batch.iter().map(|j| (j.fetch, j.cache_bytes)).collect();
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected panic (batched lanes)");
            }
            try_run_points_batched(program, &lanes, &spec.mem)
        }));
        let wall = t0.elapsed() / batch.len() as u32;
        let Ok(points) = outcome else {
            // Retry each point alone so only the offending job fails.
            // Under strict, the first failed retry cancels the rest of
            // the batch (they count as never started).
            let mut out = Vec::with_capacity(batch.len());
            for job in batch {
                if run.cancel.load(Ordering::Relaxed) {
                    break;
                }
                let result = self.execute(spec, job, program, total, worker, run);
                if result.is_err() && self.strict {
                    run.cancel.store(true, Ordering::Relaxed);
                }
                out.push((job.index, result));
            }
            return out;
        };
        batch
            .iter()
            .zip(points)
            .map(|(job, point)| {
                let result = match point {
                    Ok(point) => {
                        self.persist(spec, job, &point, wall, run);
                        self.report(spec, job, point.cycles, wall, false, total);
                        if let Some(log) = run.log {
                            log.job_finish(
                                job.index,
                                job.kind.label(),
                                job.cache_bytes,
                                worker,
                                point.cycles,
                                wall.as_millis(),
                            );
                        }
                        Ok(PointOutcome {
                            point,
                            wall,
                            cached: false,
                        })
                    }
                    Err(sim) => {
                        let error = JobError::Sim(sim.to_string());
                        eprintln!(
                            "[{} {}/{}] FAILED {} @ {}B: {error}",
                            spec.id,
                            job.index + 1,
                            total,
                            job.kind.label(),
                            job.cache_bytes,
                        );
                        if let Some(log) = run.log {
                            log.job_failed(
                                job.index,
                                job.kind.label(),
                                job.cache_bytes,
                                worker,
                                &error.to_string(),
                            );
                        }
                        Err(error)
                    }
                };
                (job.index, result)
            })
            .collect()
    }

    /// Simulates one point under `catch_unwind`, persists it (with retry
    /// and degradation on store failure), and reports progress. A panic
    /// or simulation error becomes `Err(JobError)` — the job fails alone.
    fn execute(
        &self,
        spec: &SweepSpec,
        job: &SweepJob,
        program: &Arc<DecodedProgram>,
        total: usize,
        worker: usize,
        run: &RunState<'_>,
    ) -> Result<PointOutcome, JobError> {
        let log = run.log;
        if let Some(log) = log {
            log.job_start(job.index, job.kind.label(), job.cache_bytes, worker);
        }
        let inject_panic = self.inject.panic_jobs.contains(&job.index);
        let t0 = Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected panic (job {})", job.index);
            }
            match &spec.workload {
                WorkloadSpec::Trace { path, .. } => crate::tracerun::replay_point(
                    Path::new(path),
                    program.program(),
                    job.fetch,
                    &spec.mem,
                    job.cache_bytes,
                ),
                _ => try_run_point_decoded(program, job.fetch, &spec.mem, job.cache_bytes)
                    .map_err(|e| e.to_string()),
            }
        }));
        let wall = t0.elapsed();
        let error = match result {
            Ok(Ok(point)) => {
                self.persist(spec, job, &point, wall, run);
                self.report(spec, job, point.cycles, wall, false, total);
                if let Some(log) = log {
                    log.job_finish(
                        job.index,
                        job.kind.label(),
                        job.cache_bytes,
                        worker,
                        point.cycles,
                        wall.as_millis(),
                    );
                }
                return Ok(PointOutcome {
                    point,
                    wall,
                    cached: false,
                });
            }
            Ok(Err(sim)) => JobError::Sim(sim),
            Err(payload) => JobError::Panic(panic_message(payload.as_ref())),
        };
        eprintln!(
            "[{} {}/{}] FAILED {} @ {}B: {error}",
            spec.id,
            job.index + 1,
            total,
            job.kind.label(),
            job.cache_bytes,
        );
        if let Some(log) = log {
            log.job_failed(
                job.index,
                job.kind.label(),
                job.cache_bytes,
                worker,
                &error.to_string(),
            );
        }
        Err(error)
    }

    /// Persists one measured point with bounded retry. Transient
    /// `io::Error`s back off and retry; after the attempts are exhausted
    /// the run degrades to store-less execution (a warning, never an
    /// abort).
    fn persist(
        &self,
        spec: &SweepSpec,
        job: &SweepJob,
        point: &ExperimentPoint,
        wall: Duration,
        run: &RunState<'_>,
    ) {
        let (log, store_ok) = (run.log, run.store_ok);
        let Some(store) = &self.store else { return };
        if !store_ok.load(Ordering::Relaxed) {
            return;
        }
        let entry =
            StoredPoint::from_point(job.key(), job.kind.label(), point, wall.as_millis() as u64);
        let inject_fail = self.inject.store_fail_jobs.contains(&job.index);
        let policy = BackoffPolicy::store_default();
        let result = policy.run(
            |_attempt| {
                if inject_fail {
                    Err(std::io::Error::other("injected store-write failure"))
                } else {
                    store.save(&entry)
                }
            },
            |attempt, e| {
                if let Some(log) = log {
                    log.store_retry(job.index, attempt, &e.to_string());
                }
                Retry::After(None)
            },
        );
        if let Err(e) = result {
            eprintln!(
                "[{}] warning: store write failed {} times ({e}); \
                 continuing without the result store",
                spec.id,
                policy.attempts()
            );
            if let Some(log) = log {
                log.store_degraded(job.index, &e.to_string());
            }
            store_ok.store(false, Ordering::Relaxed);
        }
    }

    fn report(
        &self,
        spec: &SweepSpec,
        job: &SweepJob,
        cycles: u64,
        wall: Duration,
        cached: bool,
        total: usize,
    ) {
        if !self.progress {
            return;
        }
        let source = if cached {
            " [cached]".to_string()
        } else {
            format!(" ({:.2}s)", wall.as_secs_f64())
        };
        eprintln!(
            "[{} {}/{}] {} @ {}B: {} cycles{}",
            spec.id,
            job.index + 1,
            total,
            job.kind.label(),
            job.cache_bytes,
            cycles,
            source,
        );
    }
}

fn failed_job(job: &SweepJob, error: JobError) -> FailedJob {
    FailedJob {
        index: job.index,
        kind: job.kind,
        cache_bytes: job.cache_bytes,
        key: job.key().to_string(),
        error,
    }
}

/// Renders a `catch_unwind` payload as text (panic payloads are almost
/// always `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(id: &str) -> SweepSpec {
        SweepSpec {
            id: id.to_string(),
            strategies: vec![StrategyKind::Conventional, StrategyKind::Pipe16x16],
            cache_sizes: vec![32, 64],
            mem: MemConfig {
                access_cycles: 3,
                ..MemConfig::default()
            },
            policy: PrefetchPolicy::TruePrefetch,
            workload: WorkloadSpec::TightLoop {
                body: 6,
                trips: 30,
                format: InstrFormat::Fixed32,
            },
        }
    }

    #[test]
    fn expansion_is_strategy_major_and_skips_invalid() {
        let mut spec = small_spec("t");
        spec.strategies = vec![StrategyKind::Pipe32x32, StrategyKind::Conventional];
        spec.cache_sizes = vec![16, 32, 64];
        let jobs = spec.expand();
        // Pipe32x32 skips the 16B point (32-byte lines).
        assert_eq!(jobs.len(), 2 + 3);
        assert_eq!(jobs[0].cache_bytes, 32);
        assert_eq!(jobs[0].kind, StrategyKind::Pipe32x32);
        assert_eq!(jobs[2].kind, StrategyKind::Conventional);
        assert!(jobs.iter().enumerate().all(|(i, j)| i == j.index));
    }

    #[test]
    fn keys_are_unique_and_cover_mem_config() {
        let spec = small_spec("t");
        let jobs = spec.expand();
        let mut keys: Vec<&str> = jobs.iter().map(|j| j.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len(), "every job key distinct");

        let mut other = small_spec("t");
        other.mem.in_bus_bytes = 8;
        assert_ne!(spec.expand()[0].key(), other.expand()[0].key());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let spec = small_spec("det");
        let serial = SweepRunner::new().run(&spec);
        let parallel = SweepRunner::new().jobs(4).run(&spec);
        assert_eq!(serial.series.len(), parallel.series.len());
        for (s, p) in serial.series.iter().zip(&parallel.series) {
            assert_eq!(s.label, p.label);
            let sc: Vec<(u32, u64)> = s.points.iter().map(|x| (x.cache_bytes, x.cycles)).collect();
            let pc: Vec<(u32, u64)> = p.points.iter().map(|x| (x.cache_bytes, x.cycles)).collect();
            assert_eq!(sc, pc, "cycle counts identical under {}", s.label);
        }
    }

    #[test]
    fn batched_sweep_matches_scalar_bit_for_bit() {
        let spec = small_spec("batchdet");
        let scalar = SweepRunner::new().batch(1).run(&spec);
        let batched = SweepRunner::new().run(&spec);
        // A serial runner batches all four pending jobs into one call;
        // batch(1) forces four scalar singletons.
        assert_eq!(scalar.batches, vec![1, 1, 1, 1]);
        assert_eq!(batched.batches, vec![4]);
        for (s, b) in scalar.series.iter().zip(&batched.series) {
            assert_eq!(s.label, b.label);
            let sc: Vec<_> = s
                .points
                .iter()
                .map(|p| (p.cache_bytes, p.stats.clone()))
                .collect();
            let bc: Vec<_> = b
                .points
                .iter()
                .map(|p| (p.cache_bytes, p.stats.clone()))
                .collect();
            assert_eq!(sc, bc, "batched lanes diverged under {}", s.label);
        }
    }

    #[test]
    fn batch_width_caps_to_keep_workers_busy() {
        // Four pending jobs across two workers: an 8-wide batch request
        // still splits into two batches so both threads get work.
        let spec = small_spec("batchfair");
        let outcome = SweepRunner::new().jobs(2).run(&spec);
        assert_eq!(outcome.batches, vec![2, 2]);
        assert!(outcome.is_complete());
    }

    #[test]
    fn resume_skips_stored_points() {
        let dir = std::env::temp_dir().join(format!("pipe-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec("resume");

        let first = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true)
            .run(&spec);
        assert_eq!(first.cached, 0);
        assert_eq!(first.computed, 4);

        let second = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true)
            .run(&spec);
        assert_eq!(second.computed, 0);
        assert_eq!(second.cached, 4);
        for (a, b) in first.series.iter().zip(&second.series) {
            let ac: Vec<u64> = a.points.iter().map(|p| p.cycles).collect();
            let bc: Vec<u64> = b.points.iter().map(|p| p.cycles).collect();
            assert_eq!(ac, bc, "store round-trips cycles");
        }

        // Without resume, the store is write-only: everything recomputes.
        let third = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .run(&spec);
        assert_eq!(third.cached, 0);
        assert_eq!(third.computed, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_panic_fails_alone_others_complete() {
        let spec = small_spec("faulty");
        let serial = SweepRunner::new().run(&spec);

        let outcome = SweepRunner::new()
            .jobs(4)
            .inject(FaultInjection {
                panic_jobs: vec![1],
                ..FaultInjection::default()
            })
            .run(&spec);
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].index, 1);
        assert!(matches!(outcome.failed[0].error, JobError::Panic(_)));
        assert_eq!(outcome.computed, 3);
        assert!(!outcome.is_complete());

        // Every successful point is bit-identical to the serial run; the
        // failed point is missing, not zeroed.
        let surviving: Vec<(u32, u64)> = outcome
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| (p.cache_bytes, p.cycles)))
            .collect();
        let all: Vec<(u32, u64)> = serial
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| (p.cache_bytes, p.cycles)))
            .collect();
        assert_eq!(surviving.len(), 3);
        assert!(surviving.iter().all(|p| all.contains(p)));
    }

    #[test]
    fn strict_mode_surfaces_typed_error_with_partial_outcome() {
        let spec = small_spec("strict");
        let err = SweepRunner::new()
            .strict(true)
            .inject(FaultInjection {
                panic_jobs: vec![0],
                ..FaultInjection::default()
            })
            .try_run(&spec)
            .unwrap_err();
        let SweepError::Strict(partial) = &err;
        assert_eq!(partial.failed.len(), 1);
        assert!(err.to_string().contains("strict sweep aborted"));
        // Fail-fast: job 0 failed first, so nothing later was started.
        assert_eq!(partial.computed, 0);

        // Non-strict try_run never errors.
        assert!(SweepRunner::new()
            .inject(FaultInjection {
                panic_jobs: vec![0],
                ..FaultInjection::default()
            })
            .try_run(&spec)
            .is_ok());
    }

    #[test]
    fn store_write_failure_degrades_but_completes() {
        let dir = std::env::temp_dir().join(format!("pipe-sweep-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec("degrade");
        let outcome = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .inject(FaultInjection {
                store_fail_jobs: vec![0],
                ..FaultInjection::default()
            })
            .run(&spec);
        // The store failure never fails the job: all four points exist.
        assert!(outcome.is_complete());
        assert_eq!(outcome.computed, 4);
        assert!(outcome.store_degraded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_store_entry_recomputes_mid_sweep() {
        let dir = std::env::temp_dir().join(format!("pipe-sweep-badstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec("badstore");
        let first = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true)
            .run(&spec);
        // Corrupt one entry and rewrite another under a mismatched key:
        // both must read as absent (recompute), not panic.
        let store = ResultStore::open(&dir).unwrap();
        let jobs = spec.expand();
        let paths: Vec<_> = jobs
            .iter()
            .map(|j| {
                store
                    .dir()
                    .join(format!("{:016x}.json", crate::store::fnv1a64(j.key())))
            })
            .collect();
        std::fs::write(&paths[0], "{truncated garbage").unwrap();
        std::fs::copy(&paths[1], &paths[2]).unwrap();

        let second = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true)
            .run(&spec);
        assert_eq!(second.cached, 2, "only the intact entries load");
        assert_eq!(second.computed, 2, "corrupt + mismatched entries recompute");
        for (a, b) in first.series.iter().zip(&second.series) {
            let ac: Vec<u64> = a.points.iter().map(|p| p.cycles).collect();
            let bc: Vec<u64> = b.points.iter().map(|p| p.cycles).collect();
            assert_eq!(ac, bc, "recomputed points identical");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_log_records_failures_and_summary() {
        let dir = std::env::temp_dir().join(format!("pipe-sweep-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec("logged");
        let outcome = SweepRunner::new()
            .jobs(2)
            .events(&dir)
            .inject(FaultInjection {
                panic_jobs: vec![2],
                ..FaultInjection::default()
            })
            .run(&spec);
        let path = outcome.events_path.clone().unwrap();
        assert_eq!(path, dir.join("events").join("logged.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains("\"event\":\"run_start\""));
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"event\":\"job_failed\""))
                .count(),
            1
        );
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"event\":\"job_finish\""))
                .count(),
            3
        );
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"event\":\"run_finish\"") && last.contains("\"failed\":1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn figure_spec_matches_figure_shape() {
        let spec = SweepSpec::figure("4a");
        assert_eq!(spec.id, "fig4a");
        assert_eq!(spec.strategies.len(), 5);
        assert_eq!(spec.mem.access_cycles, 1);
        // 5 strategies × 6 sizes minus the sub-line points.
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 28);
    }
}
