//! The parallel sweep engine.
//!
//! A [`SweepSpec`] declares an experiment sweep — which strategies, which
//! cache sizes, which memory timing and workload. [`SweepSpec::expand`]
//! turns it into a flat, index-ordered list of [`SweepJob`]s, and a
//! [`SweepRunner`] executes those jobs across scoped worker threads
//! (`--jobs N`), writing each result into its expansion-index slot so the
//! collected series are **bit-identical to a serial run** regardless of
//! thread count or scheduling: each simulation is independent and
//! deterministic, and only the collection order could differ — which the
//! index-addressed slots pin down.
//!
//! With a [`ResultStore`] attached and resume enabled, each job's
//! canonical configuration key (see [`SweepJob::key`]) is checked against
//! the store first; previously computed points are loaded instead of
//! re-simulated, so a re-run after an interrupted or completed sweep only
//! pays for the missing points.
//!
//! ```no_run
//! use pipe_experiments::sweep::{SweepRunner, SweepSpec};
//!
//! let spec = SweepSpec::figure("5b");
//! let outcome = SweepRunner::new().jobs(4).run(&spec);
//! assert_eq!(outcome.series.len(), 5);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pipe_core::FetchStrategy;
use pipe_icache::PrefetchPolicy;
use pipe_isa::{InstrFormat, Program};
use pipe_mem::MemConfig;
use pipe_workloads::LivermoreSuite;

use crate::figures::{figure_mem, Series};
use crate::matrix::{sweep_sizes, StrategyKind, ALL_STRATEGIES};
use crate::runner::{run_point, ExperimentPoint};
use crate::store::{ResultStore, StoredPoint};

/// The benchmark a sweep runs. Declarative (rather than a prebuilt
/// [`Program`]) so the workload participates in the configuration key
/// that content-addresses stored results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// The paper's 14-kernel Livermore benchmark. `scale` divides each
    /// kernel's iteration count (1 = the paper's full 150,575-instruction
    /// run; larger values give proportionally faster sweeps for smoke
    /// tests).
    Livermore {
        /// Instruction format to assemble under.
        format: InstrFormat,
        /// Iteration-count divisor (≥ 1).
        scale: u32,
    },
    /// A synthetic straight-line loop (`pipe_workloads::synthetic`).
    TightLoop {
        /// ALU instructions in the loop body.
        body: u32,
        /// Loop trips.
        trips: u16,
        /// Instruction format to assemble under.
        format: InstrFormat,
    },
}

impl WorkloadSpec {
    /// The paper's benchmark at full scale.
    pub fn livermore() -> WorkloadSpec {
        WorkloadSpec::Livermore {
            format: InstrFormat::Fixed32,
            scale: 1,
        }
    }

    /// Assembles the workload.
    ///
    /// # Panics
    ///
    /// Panics if the built-in benchmark fails to assemble (a bug, not a
    /// configuration error).
    pub fn build(&self) -> Program {
        match *self {
            WorkloadSpec::Livermore { format, scale } => {
                let suite = if scale <= 1 {
                    LivermoreSuite::build(format)
                } else {
                    LivermoreSuite::build_scaled(format, scale)
                };
                suite
                    .expect("livermore benchmark assembles")
                    .program()
                    .clone()
            }
            WorkloadSpec::TightLoop {
                body,
                trips,
                format,
            } => pipe_workloads::synthetic::tight_loop(body, trips, format),
        }
    }

    /// Canonical key fragment naming this workload.
    pub fn key(&self) -> String {
        match *self {
            WorkloadSpec::Livermore { format, scale } => {
                format!("livermore:format={format},scale={scale}")
            }
            WorkloadSpec::TightLoop {
                body,
                trips,
                format,
            } => format!("tight-loop:body={body},trips={trips},format={format}"),
        }
    }
}

/// Canonical key fragment for a memory configuration: every field, in a
/// fixed order.
fn mem_key(mem: &MemConfig) -> String {
    let ext = match &mem.external_cache {
        Some(e) => format!(
            "size={},line={},penalty={}",
            e.size_bytes, e.line_bytes, e.miss_penalty
        ),
        None => "none".to_string(),
    };
    format!(
        "access={},pipelined={},bus_in={},bus_out={},priority={},fpu={},ext={}",
        mem.access_cycles,
        mem.pipelined,
        mem.in_bus_bytes,
        mem.out_bus_bytes,
        mem.priority,
        mem.fpu_latency,
        ext
    )
}

/// A declarative sweep: the cross product of strategies × cache sizes
/// under one memory configuration and workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Identifier shown in progress output and reports ("fig5b", ...).
    pub id: String,
    /// Strategies, in presentation order.
    pub strategies: Vec<StrategyKind>,
    /// Cache sizes in bytes, ascending.
    pub cache_sizes: Vec<u32>,
    /// External memory parameters.
    pub mem: MemConfig,
    /// Off-chip prefetch gating for the PIPE strategies.
    pub policy: PrefetchPolicy,
    /// The benchmark to run.
    pub workload: WorkloadSpec,
}

impl SweepSpec {
    /// The sweep behind one of the paper's figure panels (`"4a"`–`"6b"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown figure id.
    pub fn figure(id: &str) -> SweepSpec {
        let (mem, _) = figure_mem(id);
        SweepSpec {
            id: format!("fig{id}"),
            strategies: ALL_STRATEGIES.to_vec(),
            cache_sizes: sweep_sizes().to_vec(),
            mem,
            policy: PrefetchPolicy::TruePrefetch,
            workload: WorkloadSpec::livermore(),
        }
    }

    /// Expands the spec into index-ordered jobs (strategy-major, cache
    /// size ascending). Points whose geometry is invalid for a strategy
    /// (cache smaller than the line) are skipped, matching the figures.
    pub fn expand(&self) -> Vec<SweepJob> {
        let wl = self.workload.key();
        let mem = mem_key(&self.mem);
        let mut jobs = Vec::new();
        for &kind in &self.strategies {
            for &size in &self.cache_sizes {
                if let Some(fetch) = kind.fetch_for(size, self.policy) {
                    jobs.push(SweepJob {
                        index: jobs.len(),
                        kind,
                        cache_bytes: size,
                        key: format!("v1|wl={wl}|mem={mem}|fetch={}", fetch.cache_key()),
                        fetch,
                    });
                }
            }
        }
        jobs
    }
}

/// One executable point of an expanded sweep.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Position in the expansion (and in the result slots).
    pub index: usize,
    /// The strategy this point belongs to.
    pub kind: StrategyKind,
    /// Cache size in bytes.
    pub cache_bytes: u32,
    /// The fully resolved fetch configuration.
    pub fetch: FetchStrategy,
    key: String,
}

impl SweepJob {
    /// The canonical configuration key this point is stored under: it
    /// covers workload, memory timing, and the complete fetch geometry,
    /// so equal keys simulate identically.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// One completed point with its provenance.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The measured (or store-loaded) point.
    pub point: ExperimentPoint,
    /// Wall-clock time the simulation took (zero when loaded from the
    /// store).
    pub wall: Duration,
    /// Whether the point was loaded from the result store.
    pub cached: bool,
}

/// The result of running a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One series per strategy, in spec order — the same shape the serial
    /// figure path produces.
    pub series: Vec<Series>,
    /// Points actually simulated this run.
    pub computed: usize,
    /// Points satisfied from the result store.
    pub cached: usize,
    /// Total wall-clock time of the sweep.
    pub wall: Duration,
}

/// Executes [`SweepSpec`]s across worker threads with optional
/// store-backed resume and progress reporting.
#[derive(Debug, Default)]
pub struct SweepRunner {
    jobs: usize,
    store: Option<ResultStore>,
    resume: bool,
    progress: bool,
}

impl SweepRunner {
    /// A serial runner with no store and no progress output.
    pub fn new() -> SweepRunner {
        SweepRunner {
            jobs: 1,
            store: None,
            resume: false,
            progress: false,
        }
    }

    /// Sets the worker-thread count (0 is treated as 1).
    pub fn jobs(mut self, jobs: usize) -> SweepRunner {
        self.jobs = jobs.max(1);
        self
    }

    /// Attaches a result store; every computed point is persisted to it.
    pub fn store(mut self, store: ResultStore) -> SweepRunner {
        self.store = Some(store);
        self
    }

    /// When a store is attached, load previously computed points instead
    /// of re-simulating them.
    pub fn resume(mut self, resume: bool) -> SweepRunner {
        self.resume = resume;
        self
    }

    /// Emit per-point progress lines (with wall time) to stderr.
    pub fn progress(mut self, progress: bool) -> SweepRunner {
        self.progress = progress;
        self
    }

    /// Runs the sweep.
    ///
    /// # Panics
    ///
    /// Panics if a simulation errors (sweep configurations are validated
    /// at expansion) or a store write fails.
    pub fn run(&self, spec: &SweepSpec) -> SweepOutcome {
        let started = Instant::now();
        let jobs = spec.expand();
        let total = jobs.len();
        let program = spec.workload.build();

        // Index-addressed result slots: the write order never affects the
        // collected series.
        let mut slots: Vec<Option<PointOutcome>> = (0..total).map(|_| None).collect();

        // Satisfy what we can from the store first (cheap file reads).
        let mut pending: Vec<&SweepJob> = Vec::new();
        for job in &jobs {
            let cached = if self.resume {
                self.store.as_ref().and_then(|s| s.load(job.key()))
            } else {
                None
            };
            match cached {
                Some(entry) => {
                    self.report(spec, job, entry.cycles, Duration::ZERO, true, total);
                    slots[job.index] = Some(PointOutcome {
                        point: entry.to_point(),
                        wall: Duration::ZERO,
                        cached: true,
                    });
                }
                None => pending.push(job),
            }
        }
        let cached = total - pending.len();

        let workers = self.jobs.min(pending.len().max(1));
        if workers <= 1 {
            for job in &pending {
                let outcome = self.execute(spec, job, &program, total);
                slots[job.index] = Some(outcome);
            }
        } else {
            let next = AtomicUsize::new(0);
            let shared_slots = Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = pending.get(i) else { break };
                        let outcome = self.execute(spec, job, &program, total);
                        shared_slots.lock().expect("no poisoned workers")[job.index] =
                            Some(outcome);
                    });
                }
            });
        }

        // Collect into series in expansion order: strategy-major, size
        // ascending — identical to the serial path.
        let series = spec
            .strategies
            .iter()
            .map(|&kind| Series {
                label: kind.label().to_string(),
                kind,
                points: jobs
                    .iter()
                    .filter(|j| j.kind == kind)
                    .map(|j| {
                        slots[j.index]
                            .as_ref()
                            .expect("every job produced a point")
                            .point
                            .clone()
                    })
                    .collect(),
            })
            .collect();

        SweepOutcome {
            series,
            computed: total - cached,
            cached,
            wall: started.elapsed(),
        }
    }

    /// Simulates one point, persists it, and reports progress.
    fn execute(
        &self,
        spec: &SweepSpec,
        job: &SweepJob,
        program: &Program,
        total: usize,
    ) -> PointOutcome {
        let t0 = Instant::now();
        let point = run_point(program, job.fetch, &spec.mem, job.cache_bytes);
        let wall = t0.elapsed();
        if let Some(store) = &self.store {
            let entry = StoredPoint::from_point(
                job.key(),
                job.kind.label(),
                &point,
                wall.as_millis() as u64,
            );
            store.save(&entry).expect("result store write");
        }
        self.report(spec, job, point.cycles, wall, false, total);
        PointOutcome {
            point,
            wall,
            cached: false,
        }
    }

    fn report(
        &self,
        spec: &SweepSpec,
        job: &SweepJob,
        cycles: u64,
        wall: Duration,
        cached: bool,
        total: usize,
    ) {
        if !self.progress {
            return;
        }
        let source = if cached {
            " [cached]".to_string()
        } else {
            format!(" ({:.2}s)", wall.as_secs_f64())
        };
        eprintln!(
            "[{} {}/{}] {} @ {}B: {} cycles{}",
            spec.id,
            job.index + 1,
            total,
            job.kind.label(),
            job.cache_bytes,
            cycles,
            source,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(id: &str) -> SweepSpec {
        SweepSpec {
            id: id.to_string(),
            strategies: vec![StrategyKind::Conventional, StrategyKind::Pipe16x16],
            cache_sizes: vec![32, 64],
            mem: MemConfig {
                access_cycles: 3,
                ..MemConfig::default()
            },
            policy: PrefetchPolicy::TruePrefetch,
            workload: WorkloadSpec::TightLoop {
                body: 6,
                trips: 30,
                format: InstrFormat::Fixed32,
            },
        }
    }

    #[test]
    fn expansion_is_strategy_major_and_skips_invalid() {
        let mut spec = small_spec("t");
        spec.strategies = vec![StrategyKind::Pipe32x32, StrategyKind::Conventional];
        spec.cache_sizes = vec![16, 32, 64];
        let jobs = spec.expand();
        // Pipe32x32 skips the 16B point (32-byte lines).
        assert_eq!(jobs.len(), 2 + 3);
        assert_eq!(jobs[0].cache_bytes, 32);
        assert_eq!(jobs[0].kind, StrategyKind::Pipe32x32);
        assert_eq!(jobs[2].kind, StrategyKind::Conventional);
        assert!(jobs.iter().enumerate().all(|(i, j)| i == j.index));
    }

    #[test]
    fn keys_are_unique_and_cover_mem_config() {
        let spec = small_spec("t");
        let jobs = spec.expand();
        let mut keys: Vec<&str> = jobs.iter().map(|j| j.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len(), "every job key distinct");

        let mut other = small_spec("t");
        other.mem.in_bus_bytes = 8;
        assert_ne!(spec.expand()[0].key(), other.expand()[0].key());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let spec = small_spec("det");
        let serial = SweepRunner::new().run(&spec);
        let parallel = SweepRunner::new().jobs(4).run(&spec);
        assert_eq!(serial.series.len(), parallel.series.len());
        for (s, p) in serial.series.iter().zip(&parallel.series) {
            assert_eq!(s.label, p.label);
            let sc: Vec<(u32, u64)> = s.points.iter().map(|x| (x.cache_bytes, x.cycles)).collect();
            let pc: Vec<(u32, u64)> = p.points.iter().map(|x| (x.cache_bytes, x.cycles)).collect();
            assert_eq!(sc, pc, "cycle counts identical under {}", s.label);
        }
    }

    #[test]
    fn resume_skips_stored_points() {
        let dir = std::env::temp_dir().join(format!("pipe-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec("resume");

        let first = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true)
            .run(&spec);
        assert_eq!(first.cached, 0);
        assert_eq!(first.computed, 4);

        let second = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true)
            .run(&spec);
        assert_eq!(second.computed, 0);
        assert_eq!(second.cached, 4);
        for (a, b) in first.series.iter().zip(&second.series) {
            let ac: Vec<u64> = a.points.iter().map(|p| p.cycles).collect();
            let bc: Vec<u64> = b.points.iter().map(|p| p.cycles).collect();
            assert_eq!(ac, bc, "store round-trips cycles");
        }

        // Without resume, the store is write-only: everything recomputes.
        let third = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .run(&spec);
        assert_eq!(third.cached, 0);
        assert_eq!(third.computed, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn figure_spec_matches_figure_shape() {
        let spec = SweepSpec::figure("4a");
        assert_eq!(spec.id, "fig4a");
        assert_eq!(spec.strategies.len(), 5);
        assert_eq!(spec.mem.access_cycles, 1);
        // 5 strategies × 6 sizes minus the sub-line points.
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 28);
    }
}
