//! The configuration matrix: Table II strategies and the cache-size sweep.

use pipe_core::FetchStrategy;
use pipe_icache::{CacheConfig, PipeFetchConfig, PrefetchPolicy, TibConfig};

/// Cache sizes swept in the paper's figures (bytes).
pub const SWEEP_SIZES: [u32; 6] = [16, 32, 64, 128, 256, 512];

/// The cache sizes swept by every figure.
pub fn sweep_sizes() -> &'static [u32] {
    &SWEEP_SIZES
}

/// The five fetch strategies compared in the paper's figures: the
/// conventional always-prefetch cache and the four Table II PIPE
/// configurations (`line`-`IQ`/`IQB` sizes in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Hill's always-prefetch conventional cache (16-byte lines, 4-byte
    /// sub-blocks — the sub-block *is* the per-instruction fetch unit).
    Conventional,
    /// PIPE, 8-byte lines, 8-byte IQ, 8-byte IQB.
    Pipe8x8,
    /// PIPE, 16-byte lines, 16-byte IQ, 16-byte IQB.
    Pipe16x16,
    /// PIPE, 32-byte lines, 16-byte IQ, 32-byte IQB.
    Pipe16x32,
    /// PIPE, 32-byte lines, 32-byte IQ, 32-byte IQB.
    Pipe32x32,
    /// A cache-less Target Instruction Buffer with 16-byte entries, sized
    /// to the same total hardware budget as the swept cache (paper §2.1
    /// extension; not part of the paper's five figure curves).
    Tib16,
}

/// All strategies, in the paper's presentation order.
pub const ALL_STRATEGIES: [StrategyKind; 5] = [
    StrategyKind::Conventional,
    StrategyKind::Pipe8x8,
    StrategyKind::Pipe16x16,
    StrategyKind::Pipe16x32,
    StrategyKind::Pipe32x32,
];

impl StrategyKind {
    /// The label used in the paper ("8-8", "16-16", ...).
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Conventional => "conventional",
            StrategyKind::Pipe8x8 => "8-8",
            StrategyKind::Pipe16x16 => "16-16",
            StrategyKind::Pipe16x32 => "16-32",
            StrategyKind::Pipe32x32 => "32-32",
            StrategyKind::Tib16 => "tib-16",
        }
    }

    /// Cache line (or TIB entry) size in bytes.
    pub fn line_bytes(self) -> u32 {
        match self {
            StrategyKind::Conventional | StrategyKind::Tib16 => 16,
            StrategyKind::Pipe8x8 => 8,
            StrategyKind::Pipe16x16 => 16,
            StrategyKind::Pipe16x32 | StrategyKind::Pipe32x32 => 32,
        }
    }

    /// IQ/IQB sizes in bytes (PIPE strategies only).
    pub fn queue_bytes(self) -> Option<(u32, u32)> {
        match self {
            StrategyKind::Conventional | StrategyKind::Tib16 => None,
            StrategyKind::Pipe8x8 => Some((8, 8)),
            StrategyKind::Pipe16x16 => Some((16, 16)),
            StrategyKind::Pipe16x32 => Some((16, 32)),
            StrategyKind::Pipe32x32 => Some((32, 32)),
        }
    }

    /// Builds the fetch strategy for a given cache size, or `None` when
    /// the cache is smaller than the strategy's line size (those points
    /// are skipped in the sweeps).
    pub fn fetch_for(self, cache_bytes: u32, policy: PrefetchPolicy) -> Option<FetchStrategy> {
        if cache_bytes < self.line_bytes() {
            return None;
        }
        Some(match self {
            StrategyKind::Conventional => {
                FetchStrategy::conventional(CacheConfig::new(cache_bytes, self.line_bytes()))
            }
            StrategyKind::Tib16 => {
                FetchStrategy::Tib(TibConfig::with_budget(cache_bytes, self.line_bytes()))
            }
            _ => {
                let (iq, iqb) = self.queue_bytes().expect("pipe strategy");
                let mut cfg = PipeFetchConfig::table2(cache_bytes, self.line_bytes(), iq, iqb);
                cfg.policy = policy;
                FetchStrategy::Pipe(cfg)
            }
        })
    }

    /// Returns `true` for the PIPE strategies.
    pub fn is_pipe(self) -> bool {
        matches!(
            self,
            StrategyKind::Pipe8x8
                | StrategyKind::Pipe16x16
                | StrategyKind::Pipe16x32
                | StrategyKind::Pipe32x32
        )
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table2() {
        assert_eq!(StrategyKind::Pipe8x8.label(), "8-8");
        assert_eq!(StrategyKind::Pipe16x32.label(), "16-32");
        assert_eq!(StrategyKind::Pipe16x32.line_bytes(), 32);
        assert_eq!(StrategyKind::Pipe16x32.queue_bytes(), Some((16, 32)));
    }

    #[test]
    fn small_caches_skipped_for_wide_lines() {
        assert!(StrategyKind::Pipe32x32
            .fetch_for(16, PrefetchPolicy::TruePrefetch)
            .is_none());
        assert!(StrategyKind::Pipe32x32
            .fetch_for(32, PrefetchPolicy::TruePrefetch)
            .is_some());
        assert!(StrategyKind::Pipe8x8
            .fetch_for(16, PrefetchPolicy::TruePrefetch)
            .is_some());
    }

    #[test]
    fn conventional_skips_below_line() {
        // 16-byte lines: the 16-byte point is the smallest valid one.
        assert!(StrategyKind::Conventional
            .fetch_for(16, PrefetchPolicy::TruePrefetch)
            .is_some());
    }

    #[test]
    fn all_strategies_cover_paper() {
        assert_eq!(ALL_STRATEGIES.len(), 5);
        assert_eq!(sweep_sizes(), &[16, 32, 64, 128, 256, 512]);
    }
}
