//! Rendering figures as text/CSV, and checking the paper's expectations.

use crate::figures::Figure;
use crate::matrix::{sweep_sizes, StrategyKind};
use crate::sweep::FailedJob;

/// Renders a figure as a text table: one row per cache size, one column
/// per strategy, cells in kilocycles.
pub fn render_text(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&fig.title);
    out.push('\n');
    out.push_str("cache size |");
    for s in &fig.series {
        out.push_str(&format!(" {:>12}", s.label));
    }
    out.push_str("\n-----------+");
    out.push_str(&"-".repeat(13 * fig.series.len()));
    out.push('\n');
    for &size in sweep_sizes() {
        out.push_str(&format!("{size:>9}B |"));
        for s in &fig.series {
            match s.points.iter().find(|p| p.cache_bytes == size) {
                Some(p) => out.push_str(&format!(" {:>11.0}k", p.cycles as f64 / 1000.0)),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the failed jobs of a partial sweep, one line per point (empty
/// string for a complete run). Rendered tables mark these points as
/// missing (`-`), never zero; this summary names them and says why.
pub fn render_failures(failed: &[FailedJob]) -> String {
    let mut out = String::new();
    if failed.is_empty() {
        return out;
    }
    out.push_str(&format!("  {} point(s) failed:\n", failed.len()));
    for f in failed {
        out.push_str(&format!("  [failed] {f}\n"));
    }
    out
}

/// Renders a figure as CSV (`strategy,cache_bytes,cycles`).
pub fn render_csv(fig: &Figure) -> String {
    let mut out = String::from("strategy,cache_bytes,cycles\n");
    for s in &fig.series {
        for p in &s.points {
            out.push_str(&format!("{},{},{}\n", s.label, p.cache_bytes, p.cycles));
        }
    }
    out
}

fn cycles_at(fig: &Figure, kind: StrategyKind, size: u32) -> Option<u64> {
    fig.series
        .iter()
        .find(|s| s.kind == kind)
        .and_then(|s| s.points.iter().find(|p| p.cache_bytes == size))
        .map(|p| p.cycles)
}

/// Checks a reproduced figure against the paper's qualitative claims,
/// returning a list of violations (empty = every expectation holds).
///
/// Expectations encoded (paper §6):
///
/// * **Monotone-ish curves**: growing the cache never makes a strategy
///   more than 2 % slower.
/// * **Access > 1 cycle ⇒ PIPE wins**: every PIPE configuration beats the
///   conventional cache at every common cache size.
/// * **Small-cache advantage**: at 16–32 B with slow memory, the best PIPE
///   configuration is at least 1.3× faster than conventional.
/// * **Flatness**: for the bus-8 panels, the best PIPE configuration's
///   smallest-cache point is within 45 % of its 512-byte point (the
///   paper's "a 16- or 32-byte cache achieves close to the performance of
///   a 512-byte cache"; the paper's own 5b curves carry some slope).
pub fn check_expectations(fig: &Figure) -> Vec<String> {
    let mut violations = Vec::new();
    let sizes = sweep_sizes();

    for s in &fig.series {
        for w in s.points.windows(2) {
            if w[1].cycles as f64 > w[0].cycles as f64 * 1.02 {
                violations.push(format!(
                    "{}: {} slows down from {}B ({}) to {}B ({})",
                    fig.id, s.label, w[0].cache_bytes, w[0].cycles, w[1].cache_bytes, w[1].cycles
                ));
            }
        }
    }

    if fig.mem.access_cycles > 1 {
        for &size in sizes {
            let Some(conv) = cycles_at(fig, StrategyKind::Conventional, size) else {
                continue;
            };
            for s in &fig.series {
                if !s.kind.is_pipe() {
                    continue;
                }
                if let Some(p) = cycles_at(fig, s.kind, size) {
                    if p > conv {
                        violations.push(format!(
                            "{}: PIPE {} ({p}) loses to conventional ({conv}) at {size}B",
                            fig.id, s.label
                        ));
                    }
                }
            }
        }

        // Small-cache advantage.
        for &size in &[16u32, 32] {
            let (Some(conv), Some(best)) = (
                cycles_at(fig, StrategyKind::Conventional, size),
                fig.series
                    .iter()
                    .filter(|s| s.kind.is_pipe())
                    .filter_map(|s| cycles_at(fig, s.kind, size))
                    .min(),
            ) else {
                continue;
            };
            if (conv as f64) < best as f64 * 1.3 {
                violations.push(format!(
                    "{}: small-cache advantage at {size}B only {:.2}x",
                    fig.id,
                    conv as f64 / best as f64
                ));
            }
        }
    }

    // The flatness claim compares the *best* PIPE configuration, so only
    // check panels carrying the full PIPE family.
    let pipe_series = fig.series.iter().filter(|s| s.kind.is_pipe()).count();
    if fig.mem.in_bus_bytes >= 8 && pipe_series >= 2 {
        let best_flat = fig
            .series
            .iter()
            .filter(|s| s.kind.is_pipe())
            .filter_map(|s| {
                let first = s.points.first()?.cycles as f64;
                let last = s.points.last()?.cycles as f64;
                Some(first / last)
            })
            .fold(f64::INFINITY, f64::min);
        if best_flat > 1.45 {
            violations.push(format!(
                "{}: best PIPE curve not flat (smallest/largest = {best_flat:.2})",
                fig.id
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;
    use crate::runner::ExperimentPoint;
    use pipe_core::SimStats;
    use pipe_mem::MemConfig;

    fn fake_point(cache_bytes: u32, cycles: u64) -> ExperimentPoint {
        ExperimentPoint {
            cache_bytes,
            cycles,
            stats: SimStats::default(),
        }
    }

    fn fake_figure(conv: &[(u32, u64)], pipe: &[(u32, u64)], access: u32) -> Figure {
        Figure {
            id: "test".into(),
            title: "test".into(),
            mem: MemConfig {
                access_cycles: access,
                in_bus_bytes: 8,
                ..MemConfig::default()
            },
            series: vec![
                Series {
                    label: "conventional".into(),
                    kind: StrategyKind::Conventional,
                    points: conv.iter().map(|&(s, c)| fake_point(s, c)).collect(),
                },
                Series {
                    label: "16-16".into(),
                    kind: StrategyKind::Pipe16x16,
                    points: pipe.iter().map(|&(s, c)| fake_point(s, c)).collect(),
                },
            ],
        }
    }

    #[test]
    fn clean_figure_passes() {
        let fig = fake_figure(
            &[(16, 1000), (32, 800), (64, 600)],
            &[(16, 500), (32, 480), (64, 460)],
            6,
        );
        assert!(check_expectations(&fig).is_empty());
    }

    #[test]
    fn pipe_losing_is_flagged() {
        let fig = fake_figure(&[(16, 500)], &[(16, 900)], 6);
        let v = check_expectations(&fig);
        assert!(
            v.iter().any(|m| m.contains("loses to conventional")),
            "{v:?}"
        );
    }

    #[test]
    fn non_monotone_is_flagged() {
        let fig = fake_figure(&[(16, 500), (32, 900)], &[(16, 300), (32, 290)], 6);
        let v = check_expectations(&fig);
        assert!(v.iter().any(|m| m.contains("slows down")), "{v:?}");
    }

    #[test]
    fn renders() {
        let fig = fake_figure(&[(16, 1000)], &[(16, 500)], 6);
        let text = render_text(&fig);
        assert!(text.contains("conventional"));
        let csv = render_csv(&fig);
        assert!(csv.contains("16-16,16,500"));
    }
}
