//! # pipe-experiments
//!
//! The experiment harness that regenerates every table and figure of
//! Farrens & Pleszkun (ISCA 1989):
//!
//! | experiment | function |
//! |---|---|
//! | Table I — inner-loop sizes | [`tables::table1`] |
//! | Table II — IQ/IQB configurations | [`tables::table2`] |
//! | Fig. 4a/4b — access 1, bus 4/8 B | [`figures::figure`]`("4a" / "4b")` |
//! | Fig. 5a/5b — access 6, bus 4/8 B | [`figures::figure`]`("5a" / "5b")` |
//! | Fig. 6a/6b — access 6, bus 8 B, non-pipelined/pipelined | [`figures::figure`]`("6a" / "6b")` |
//! | ablations (access 2–3, priority, prefetch policy, format) | [`figures::ablation`] |
//!
//! Every figure is a cache-size sweep (16–512 bytes) of the five
//! strategies of Table II (conventional plus the four PIPE
//! configurations), measured as **total cycles to execute the 150,575
//! instruction Livermore benchmark** — the paper's metric.
//!
//! The `repro` binary drives all of this from the command line and prints
//! paper-shaped tables; [`report`] renders text and CSV.

pub mod backoff;
pub mod events;
pub mod figures;
pub mod json;
pub mod matrix;
pub mod profile;
pub mod report;
pub mod runner;
pub mod store;
pub mod studies;
pub mod svg;
pub mod sweep;
pub mod tables;
pub mod tracerun;

pub use backoff::BackoffPolicy;
pub use events::RunLog;
pub use figures::{
    ablation, figure, figure_mem, figure_with, try_figure_with, try_figure_with_workload,
    try_joint_id_figure_with, try_joint_id_figure_with_workload, Figure, FigureRun, Series,
    ALL_ABLATIONS, ALL_FIGURES, JOINT_ID_FIGURE,
};
pub use json::stats_json;
pub use matrix::{sweep_sizes, StrategyKind, ALL_STRATEGIES};
pub use profile::{per_loop_profile, render_profile, render_profile_csv, LoopProfile, LoopShare};
pub use report::{check_expectations, render_csv, render_failures, render_text};
pub use runner::{run_point, try_run_point, try_run_points_batched, ExperimentPoint};
pub use store::{fnv1a64, PruneReport, ResultStore, StoreError, StoredPoint};
pub use svg::render_figure_svg;
pub use sweep::{
    mem_key, FailedJob, FaultInjection, JobError, PointOutcome, SweepError, SweepJob, SweepOutcome,
    SweepRunner, SweepSpec, WorkloadSpec,
};
pub use tracerun::{parse_workload_key, replay_point, trace_program};
