//! Table I and Table II reproductions.

use pipe_workloads::{livermore_benchmark, TABLE1_INNER_LOOP_BYTES};

use crate::matrix::ALL_STRATEGIES;

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// 1-based loop number.
    pub loop_index: usize,
    /// Kernel name.
    pub name: &'static str,
    /// Inner-loop size the paper reports (bytes).
    pub paper_bytes: u32,
    /// Inner-loop size of our generated code (bytes).
    pub measured_bytes: u32,
    /// Calibrated trip count.
    pub trips: u32,
}

/// Regenerates Table I (inner-loop sizes) from the built benchmark and
/// pairs each row with the paper's value.
pub fn table1() -> Vec<Table1Row> {
    let suite = livermore_benchmark();
    suite
        .loops()
        .iter()
        .map(|info| Table1Row {
            loop_index: info.index,
            name: info.name,
            paper_bytes: TABLE1_INNER_LOOP_BYTES[info.index - 1],
            measured_bytes: info.inner_loop_bytes,
            trips: info.trips,
        })
        .collect()
}

/// Renders Table I as text, in the paper's layout, extended with each
/// kernel's per-iteration memory-request rate (the property the paper
/// chose the Livermore loops for: "a large number of data requests per
/// inner loop").
pub fn render_table1() -> String {
    let mut out = String::from(
        "Table I. Inner loop sizes (bytes)\nloop  kernel                         paper  measured  trips  mem-reqs/iter\n",
    );
    for row in table1() {
        let mix = pipe_workloads::livermore::kernel(row.loop_index).mix();
        out.push_str(&format!(
            "{:>4}  {:<29} {:>6}  {:>8}  {:>5}  {:>13}\n",
            row.loop_index,
            row.name,
            row.paper_bytes,
            row.measured_bytes,
            row.trips,
            mix.memory_requests()
        ));
    }
    out
}

/// One row of the Table II reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Configuration label ("8-8", ...).
    pub configuration: &'static str,
    /// Cache line size (bytes).
    pub line_bytes: u32,
    /// IQ size (bytes).
    pub iq_bytes: u32,
    /// IQB size (bytes).
    pub iqb_bytes: u32,
}

/// Regenerates Table II (the simulated IQ and IQB configurations).
pub fn table2() -> Vec<Table2Row> {
    ALL_STRATEGIES
        .into_iter()
        .filter(|s| s.is_pipe())
        .map(|s| {
            let (iq, iqb) = s.queue_bytes().expect("pipe strategy");
            Table2Row {
                configuration: s.label(),
                line_bytes: s.line_bytes(),
                iq_bytes: iq,
                iqb_bytes: iqb,
            }
        })
        .collect()
}

/// Renders Table II as text, in the paper's layout.
pub fn render_table2() -> String {
    let mut out = String::from(
        "Table II. Simulated IQ and IQB configurations\nconfiguration  line size  IQ size  IQB size\n",
    );
    for row in table2() {
        out.push_str(&format!(
            "{:<13}  {:>8}B  {:>6}B  {:>7}B\n",
            row.configuration, row.line_bytes, row.iq_bytes, row.iqb_bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_exactly() {
        for row in table1() {
            assert_eq!(
                row.paper_bytes, row.measured_bytes,
                "loop {}",
                row.loop_index
            );
        }
    }

    #[test]
    fn table2_matches_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 4);
        let expect = [
            ("8-8", 8, 8, 8),
            ("16-16", 16, 16, 16),
            ("16-32", 32, 16, 32),
            ("32-32", 32, 32, 32),
        ];
        for (row, &(cfg, line, iq, iqb)) in rows.iter().zip(&expect) {
            assert_eq!(row.configuration, cfg);
            assert_eq!(row.line_bytes, line);
            assert_eq!(row.iq_bytes, iq);
            assert_eq!(row.iqb_bytes, iqb);
        }
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(render_table1().contains("hydro"));
        assert!(render_table2().contains("16-32"));
    }
}
