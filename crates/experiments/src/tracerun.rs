//! Trace-driven sweep execution.
//!
//! Connects the `pipe-trace` subsystem to the sweep engine: a
//! [`WorkloadSpec::Trace`](crate::sweep::WorkloadSpec) names a trace file
//! (binary `.ptr` or plain-text addresses), and every job of the sweep
//! replays that trace through its fetch engine instead of running the
//! functional core. Results are content-addressed: the workload fragment
//! of the store key is the FNV-1a 64 digest of the trace file's bytes,
//! so editing the trace invalidates its cached points.
//!
//! Binary traces carry the canonical key of the workload they were
//! recorded from; [`parse_workload_key`] inverts
//! [`WorkloadSpec::key`](crate::sweep::WorkloadSpec::key) so the backing
//! program can be rebuilt bit-identically (verified against the trace
//! header's program fingerprint). Address-only traces get a synthetic
//! `nop` image (see `pipe_trace::import`).

use std::fs;
use std::io::Read;
use std::path::Path;

use pipe_core::{FetchStrategy, SimStats};
use pipe_icache::{ReplayHarness, ReplayStats};
use pipe_isa::{InstrFormat, Program};
use pipe_mem::{MemConfig, MemorySystem};
use pipe_trace::{
    parse_address_trace, program_fnv, replay_trace, schedule_from_addresses, synthesize_program,
    TraceReader, MAGIC,
};

use crate::runner::ExperimentPoint;
use crate::sweep::WorkloadSpec;

/// Whether `path` holds a binary `.ptr` trace (starts with the container
/// magic) rather than a plain-text address trace.
///
/// # Errors
///
/// Any I/O failure opening or reading the file.
pub fn is_binary_trace(path: &Path) -> std::io::Result<bool> {
    let mut head = [0u8; 4];
    let mut f = fs::File::open(path)?;
    let n = f.read(&mut head)?;
    Ok(n == 4 && head == MAGIC)
}

fn parse_format(s: &str) -> Option<InstrFormat> {
    match s {
        "fixed-32" => Some(InstrFormat::Fixed32),
        "mixed-16/32" => Some(InstrFormat::Mixed),
        _ => None,
    }
}

/// Parses a canonical workload key (the exact strings
/// [`WorkloadSpec::key`] produces) back into a [`WorkloadSpec`], so a
/// binary trace's backing program can be rebuilt from its header alone.
/// Returns `None` for keys this build cannot reconstruct.
pub fn parse_workload_key(key: &str) -> Option<WorkloadSpec> {
    let (kind, rest) = key.split_once(':')?;
    let field = |name: &str| {
        rest.split(',')
            .filter_map(|f| f.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    };
    match kind {
        "livermore" => Some(WorkloadSpec::Livermore {
            format: parse_format(field("format")?)?,
            scale: field("scale")?.parse().ok()?,
        }),
        "tight-loop" => Some(WorkloadSpec::TightLoop {
            body: field("body")?.parse().ok()?,
            trips: field("trips")?.parse().ok()?,
            format: parse_format(field("format")?)?,
        }),
        _ => None,
    }
}

/// Rebuilds the program backing a trace file: for a binary trace, the
/// workload named in its header (fingerprint-checked); for an address
/// trace, a synthetic `nop` image spanning its address range.
///
/// # Errors
///
/// A user-facing message for I/O failures, undecodable traces, workload
/// keys this build cannot reconstruct, and fingerprint mismatches.
pub fn trace_program(path: &Path) -> Result<Program, String> {
    let display = path.display();
    let binary = is_binary_trace(path).map_err(|e| format!("cannot read {display}: {e}"))?;
    if binary {
        let reader = TraceReader::open(path).map_err(|e| format!("{display}: {e}"))?;
        let workload = &reader.meta().workload;
        let spec = parse_workload_key(workload).ok_or_else(|| {
            format!(
                "{display}: trace records workload `{workload}`, which this build \
                 cannot reconstruct"
            )
        })?;
        let program = spec.build();
        let got = program_fnv(&program);
        let expected = reader.meta().program_fnv;
        if got != expected {
            return Err(format!(
                "{display}: rebuilt workload `{workload}` hashes to {got:#018x}, \
                 but the trace was recorded from {expected:#018x}"
            ));
        }
        Ok(program)
    } else {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {display}: {e}"))?;
        let addrs = parse_address_trace(&text).map_err(|e| format!("{display}: {e}"))?;
        synthesize_program(&addrs).map_err(|e| format!("{display}: {e}"))
    }
}

/// Converts replay statistics into a sweep [`ExperimentPoint`]. Recorded
/// non-fetch stall cycles land in `stalls.data_wait` (the replay model
/// does not distinguish data, queue, and branch stalls).
pub fn point_from_replay(stats: &ReplayStats, cache_bytes: u32) -> ExperimentPoint {
    let mut s = SimStats {
        cycles: stats.cycles,
        instructions_issued: stats.instructions,
        ..SimStats::default()
    };
    s.stalls.ifetch = stats.ifetch_stalls;
    s.stalls.data_wait = stats.wait_cycles;
    s.fetch = stats.fetch.clone();
    ExperimentPoint {
        cache_bytes,
        cycles: stats.cycles,
        stats: s,
    }
}

/// Replays the trace at `path` through `fetch` and returns the measured
/// point — the trace-driven counterpart of
/// [`try_run_point`](crate::runner::try_run_point). `program` must be the
/// trace's backing program (see [`trace_program`]).
///
/// # Errors
///
/// A user-facing message for trace decoding failures (including CRC
/// errors), configuration errors, and stuck replays.
pub fn replay_point(
    path: &Path,
    program: &Program,
    fetch: FetchStrategy,
    mem: &MemConfig,
    cache_bytes: u32,
) -> Result<ExperimentPoint, String> {
    let display = path.display();
    let binary = is_binary_trace(path).map_err(|e| format!("cannot read {display}: {e}"))?;
    let stats = if binary {
        let reader = TraceReader::open(path).map_err(|e| format!("{display}: {e}"))?;
        replay_trace(reader, program, &fetch, mem)
            .map_err(|e| format!("{display}: {e}"))?
            .stats
    } else {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {display}: {e}"))?;
        let addrs = parse_address_trace(&text).map_err(|e| format!("{display}: {e}"))?;
        let steps = schedule_from_addresses(&addrs);
        let engine = fetch
            .build(program)
            .map_err(|e| format!("invalid replay configuration: {e}"))?;
        let mut harness = ReplayHarness::new(engine, MemorySystem::new(*mem));
        harness.run(steps).map_err(|e| format!("{display}: {e}"))?;
        harness.stats()
    };
    Ok(point_from_replay(&stats, cache_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::StrategyKind;
    use crate::store::ResultStore;
    use crate::sweep::{SweepRunner, SweepSpec};
    use pipe_core::Processor;
    use pipe_icache::PrefetchPolicy;
    use pipe_trace::{TraceMeta, TraceRecorder};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn workload_keys_round_trip() {
        for spec in [
            WorkloadSpec::Livermore {
                format: InstrFormat::Fixed32,
                scale: 20,
            },
            WorkloadSpec::Livermore {
                format: InstrFormat::Mixed,
                scale: 1,
            },
            WorkloadSpec::TightLoop {
                body: 6,
                trips: 30,
                format: InstrFormat::Fixed32,
            },
        ] {
            assert_eq!(parse_workload_key(&spec.key()), Some(spec.clone()));
        }
        assert_eq!(parse_workload_key("unknown:x=1"), None);
        assert_eq!(parse_workload_key("livermore:scale=1"), None);
    }

    /// Records a tight-loop run into a `.ptr` file and returns its path.
    fn record_tight_loop(dir: &Path) -> std::path::PathBuf {
        let spec = WorkloadSpec::TightLoop {
            body: 6,
            trips: 30,
            format: InstrFormat::Fixed32,
        };
        let program = spec.build();
        let config = pipe_core::SimConfig::default();
        let meta = TraceMeta {
            workload: spec.key(),
            program_fnv: program_fnv(&program),
            entry_pc: program.entry(),
            fetch_key: config.fetch.cache_key(),
            mem_key: crate::sweep::mem_key(&config.mem),
        };
        let path = dir.join("tight-loop.ptr");
        let recorder = Rc::new(RefCell::new(
            TraceRecorder::create(&path, &meta).expect("creates trace"),
        ));
        let proc = Processor::new(&program, &config).expect("builds");
        let mut proc = proc.with_trace(Rc::clone(&recorder));
        proc.run().expect("runs");
        let stats = proc.stats();
        recorder
            .borrow_mut()
            .finish(stats.cycles)
            .expect("finishes trace");
        path
    }

    #[test]
    fn trace_driven_sweep_keys_on_content_hash() {
        let dir = std::env::temp_dir().join(format!("pipe-tracerun-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = record_tight_loop(&dir);

        let workload = WorkloadSpec::trace(&trace).expect("trace workload");
        let fnv = pipe_trace::file_fnv(&trace).unwrap();
        assert_eq!(workload.key(), format!("trace:fnv={fnv:016x}"));

        let spec = SweepSpec {
            id: "trace-sweep".to_string(),
            strategies: vec![StrategyKind::Conventional, StrategyKind::Pipe16x16],
            cache_sizes: vec![32, 64],
            mem: MemConfig::default(),
            policy: PrefetchPolicy::TruePrefetch,
            workload,
        };
        for job in spec.expand() {
            assert!(job.key().contains(&format!("trace:fnv={fnv:016x}")));
        }
        // Every replayed point issues exactly the recorded instruction
        // count, whatever the fetch engine.
        let recorded_instructions = pipe_core::run_program(
            &trace_program(&trace).unwrap(),
            &pipe_core::SimConfig::default(),
        )
        .unwrap()
        .instructions_issued;
        let store = ResultStore::open(&dir).unwrap();
        let outcome = SweepRunner::new().store(store).resume(true).run(&spec);
        assert!(outcome.is_complete());
        assert_eq!(outcome.computed, 4);
        for series in &outcome.series {
            for point in &series.points {
                assert!(point.cycles > 0);
                assert_eq!(point.stats.instructions_issued, recorded_instructions);
            }
        }

        // Resume hits the content-addressed store.
        let again = SweepRunner::new()
            .store(ResultStore::open(&dir).unwrap())
            .resume(true)
            .run(&spec);
        assert_eq!(again.cached, 4);
        assert_eq!(again.computed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replayed_trace_matches_recorded_run_through_sweep_path() {
        let dir = std::env::temp_dir().join(format!("pipe-tracerun-det-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = record_tight_loop(&dir);
        let program = trace_program(&trace).expect("rebuilds program");

        // Replay under the recorded configuration: bit-identical totals.
        let config = pipe_core::SimConfig::default();
        let point =
            replay_point(&trace, &program, config.fetch, &config.mem, 128).expect("replays");
        let reference = pipe_core::run_program(&program, &config).expect("reference run");
        assert_eq!(point.cycles, reference.cycles);
        assert_eq!(point.stats.stalls.ifetch, reference.stalls.ifetch);
        assert_eq!(
            point.stats.instructions_issued,
            reference.instructions_issued
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn address_trace_replays_through_sweep_path() {
        let dir = std::env::temp_dir().join(format!("pipe-tracerun-addr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("addrs.txt");
        let addrs = pipe_workloads::traces::loop_nest(0x100, 2, 4, 3);
        let text: String = addrs.iter().map(|a| format!("{a:#x}\n")).collect();
        std::fs::write(&path, text).unwrap();

        assert!(!is_binary_trace(&path).unwrap());
        let program = trace_program(&path).expect("synthesizes");
        let config = pipe_core::SimConfig::default();
        let point = replay_point(&path, &program, config.fetch, &config.mem, 128).expect("replays");
        assert_eq!(point.stats.instructions_issued as usize, addrs.len());
        assert!(point.cycles >= point.stats.instructions_issued);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
