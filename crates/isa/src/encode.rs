//! Instruction encoding to 16-bit parcels.
//!
//! ## Layout
//!
//! Non-branch first parcel:
//!
//! ```text
//! 15  14..10  9..7  6..4  3..1  0
//! 0   opcode  rd    rs1   rs2   ext
//! ```
//!
//! Prepare-to-branch first parcel (bit 15 — the *branch bit* — set):
//!
//! ```text
//! 15  14..12  11..9  8..6   5..3  2..1  0
//! 1   cond    br     delay  rs    0     ext
//! ```
//!
//! When the `ext` bit is set, a second parcel carrying a 16-bit immediate
//! follows. In the fixed 32-bit format the `ext` bit is set on every
//! instruction (instructions without an immediate carry a zero parcel), so
//! a decoder never needs to know the format: it simply follows the bit.

use crate::format::InstrFormat;
use crate::instruction::{AluOp, Instruction};
use crate::opcode::{Opcode, BRANCH_BIT};

/// An encoded instruction: one or two parcels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Encoded {
    parcels: [u16; 2],
    len: u8,
}

impl Encoded {
    /// The encoded parcels.
    pub fn parcels(&self) -> &[u16] {
        &self.parcels[..self.len as usize]
    }

    /// Number of parcels (1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always `false`: an encoding has at least one parcel.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Maps an [`AluOp`] to its register-form opcode.
pub fn alu_reg_opcode(op: AluOp) -> Opcode {
    match op {
        AluOp::Add => Opcode::Add,
        AluOp::Sub => Opcode::Sub,
        AluOp::And => Opcode::And,
        AluOp::Or => Opcode::Or,
        AluOp::Xor => Opcode::Xor,
        AluOp::Sll => Opcode::Sll,
        AluOp::Srl => Opcode::Srl,
        AluOp::Sra => Opcode::Sra,
    }
}

/// Maps an [`AluOp`] to its immediate-form opcode.
pub fn alu_imm_opcode(op: AluOp) -> Opcode {
    match op {
        AluOp::Add => Opcode::Addi,
        AluOp::Sub => Opcode::Subi,
        AluOp::And => Opcode::Andi,
        AluOp::Or => Opcode::Ori,
        AluOp::Xor => Opcode::Xori,
        AluOp::Sll => Opcode::Slli,
        AluOp::Srl => Opcode::Srli,
        AluOp::Sra => Opcode::Srai,
    }
}

fn pack(op: Opcode, rd: u16, rs1: u16, rs2: u16) -> u16 {
    debug_assert!(rd < 8 && rs1 < 8 && rs2 < 8);
    (op.bits() << 10) | (rd << 7) | (rs1 << 4) | (rs2 << 1)
}

/// Encodes `instr` under `format`.
///
/// In [`InstrFormat::Fixed32`] the result is always two parcels; in
/// [`InstrFormat::Mixed`] it is two parcels only for immediate-carrying
/// instructions.
pub fn encode(instr: &Instruction, format: InstrFormat) -> Encoded {
    let (first, imm): (u16, Option<u16>) = match *instr {
        Instruction::Nop => (pack(Opcode::Nop, 0, 0, 0), None),
        Instruction::Halt => (pack(Opcode::Halt, 0, 0, 0), None),
        Instruction::Xchg => (pack(Opcode::Xchg, 0, 0, 0), None),
        Instruction::Alu { op, rd, rs1, rs2 } => (
            pack(
                alu_reg_opcode(op),
                rd.number().into(),
                rs1.number().into(),
                rs2.number().into(),
            ),
            None,
        ),
        Instruction::AluImm { op, rd, rs1, imm } => (
            pack(
                alu_imm_opcode(op),
                rd.number().into(),
                rs1.number().into(),
                0,
            ),
            Some(imm as u16),
        ),
        Instruction::Lim { rd, imm } => (
            pack(Opcode::Lim, rd.number().into(), 0, 0),
            Some(imm as u16),
        ),
        Instruction::Lui { rd, imm } => (pack(Opcode::Lui, rd.number().into(), 0, 0), Some(imm)),
        Instruction::Load { base, disp } => (
            pack(Opcode::Ldw, 0, base.number().into(), 0),
            Some(disp as u16),
        ),
        Instruction::StoreAddr { base, disp } => (
            pack(Opcode::Sta, 0, base.number().into(), 0),
            Some(disp as u16),
        ),
        Instruction::Lbr { br, target_parcel } => (
            pack(Opcode::Lbr, br.number().into(), 0, 0),
            Some(target_parcel),
        ),
        Instruction::LbrReg { br, rs1 } => (
            pack(Opcode::LbrReg, br.number().into(), rs1.number().into(), 0),
            None,
        ),
        Instruction::Pbr {
            cond,
            br,
            rs,
            delay,
        } => {
            debug_assert!(delay < 8, "delay-slot count out of range");
            let word = BRANCH_BIT
                | (cond.bits() << 12)
                | (u16::from(br.number()) << 9)
                | (u16::from(delay) << 6)
                | (u16::from(rs.number()) << 3);
            (word, None)
        }
    };

    match (format, imm) {
        (_, Some(imm)) => Encoded {
            parcels: [first | 1, imm],
            len: 2,
        },
        (InstrFormat::Fixed32, None) => Encoded {
            parcels: [first | 1, 0],
            len: 2,
        },
        (InstrFormat::Mixed, None) => Encoded {
            parcels: [first, 0],
            len: 1,
        },
    }
}

/// Returns `true` if a first parcel indicates a following immediate parcel.
pub fn parcel_has_ext(first: u16) -> bool {
    first & 1 != 0
}

/// Returns `true` if a first parcel is a prepare-to-branch instruction.
///
/// This is the single-bit branch test the PIPE fetch logic performs when
/// scanning the instruction queue.
pub fn parcel_is_branch(first: u16) -> bool {
    first & BRANCH_BIT != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Cond;
    use crate::reg::{BranchReg, Reg};

    #[test]
    fn fixed32_always_two_parcels() {
        let e = encode(&Instruction::Nop, InstrFormat::Fixed32);
        assert_eq!(e.len(), 2);
        assert!(parcel_has_ext(e.parcels()[0]));
    }

    #[test]
    fn mixed_sizes() {
        let reg_op = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        };
        assert_eq!(encode(&reg_op, InstrFormat::Mixed).len(), 1);
        let imm_op = Instruction::Lim {
            rd: Reg::new(1),
            imm: -1,
        };
        let e = encode(&imm_op, InstrFormat::Mixed);
        assert_eq!(e.len(), 2);
        assert_eq!(e.parcels()[1], 0xFFFF);
    }

    #[test]
    fn branch_bit_only_on_pbr() {
        let pbr = Instruction::Pbr {
            cond: Cond::Nez,
            br: BranchReg::new(3),
            rs: Reg::new(2),
            delay: 5,
        };
        let e = encode(&pbr, InstrFormat::Mixed);
        assert!(parcel_is_branch(e.parcels()[0]));

        for i in [
            Instruction::Nop,
            Instruction::Halt,
            Instruction::Load {
                base: Reg::new(1),
                disp: 4,
            },
        ] {
            let e = encode(&i, InstrFormat::Fixed32);
            assert!(!parcel_is_branch(e.parcels()[0]), "{i}");
        }
    }

    #[test]
    fn ext_bit_consistency_with_size() {
        let instrs = [
            Instruction::Nop,
            Instruction::Xchg,
            Instruction::AluImm {
                op: AluOp::Sub,
                rd: Reg::new(4),
                rs1: Reg::new(4),
                imm: 1,
            },
        ];
        for i in &instrs {
            for f in InstrFormat::ALL {
                let e = encode(i, f);
                assert_eq!(e.len(), i.size_parcels(f) as usize, "{i} under {f}");
                assert_eq!(parcel_has_ext(e.parcels()[0]), e.len() == 2);
            }
        }
    }
}
