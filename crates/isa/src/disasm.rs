//! Disassembly of program images.

use crate::program::Program;

/// Disassembles an entire program image into text, one instruction per
/// line, with byte addresses.
///
/// ```
/// use pipe_isa::{Assembler, InstrFormat, disassemble};
///
/// let p = Assembler::new(InstrFormat::Fixed32)
///     .assemble("nop\nhalt\n")
///     .unwrap();
/// let text = disassemble(&p);
/// assert!(text.contains("nop"));
/// assert!(text.contains("halt"));
/// ```
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    // Invert the symbol table so labels appear at their addresses.
    let mut labels: Vec<(u32, &str)> = program
        .symbols()
        .iter()
        .map(|(name, addr)| (*addr, name.as_str()))
        .collect();
    labels.sort();

    for (addr, instr) in program.instructions() {
        for (laddr, name) in &labels {
            if *laddr == addr {
                out.push_str(name);
                out.push_str(":\n");
            }
        }
        out.push_str(&format!("{addr:#06x}:  {instr}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::format::InstrFormat;

    #[test]
    fn includes_labels_and_addresses() {
        let p = Assembler::new(InstrFormat::Fixed32)
            .assemble("lim r1, 2\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n")
            .unwrap();
        let text = disassemble(&p);
        assert!(text.contains("top:"), "{text}");
        assert!(text.contains("0x0000:"), "{text}");
        assert!(text.contains("pbr.nez b0, r1, 0"), "{text}");
    }
}
