//! Instruction format selection.

use std::fmt;

/// The instruction format used when laying out a program in memory.
///
/// The real PIPE chip mixes one-parcel (16-bit) and two-parcel (32-bit)
/// instructions. For the results presented in the paper a fixed 32-bit
/// format was simulated instead, "to make comparisons to other machines
/// that only have one instruction format more realistic" (§6). This
/// reproduction defaults to [`InstrFormat::Fixed32`] for the same reason and
/// keeps [`InstrFormat::Mixed`] as an ablation (paper parameter 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InstrFormat {
    /// Every instruction occupies two parcels (4 bytes). Instructions
    /// without an immediate are padded with a zero second parcel.
    #[default]
    Fixed32,
    /// Instructions occupy one parcel, or two when they carry a 16-bit
    /// immediate — the PIPE chip's native layout.
    Mixed,
}

impl InstrFormat {
    /// Both formats, for parameter sweeps.
    pub const ALL: [InstrFormat; 2] = [InstrFormat::Fixed32, InstrFormat::Mixed];

    /// Returns `true` when every instruction has the same 4-byte size.
    pub fn is_fixed(self) -> bool {
        matches!(self, InstrFormat::Fixed32)
    }
}

impl fmt::Display for InstrFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrFormat::Fixed32 => f.write_str("fixed-32"),
            InstrFormat::Mixed => f.write_str("mixed-16/32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fixed32() {
        assert_eq!(InstrFormat::default(), InstrFormat::Fixed32);
        assert!(InstrFormat::Fixed32.is_fixed());
        assert!(!InstrFormat::Mixed.is_fixed());
    }

    #[test]
    fn display() {
        assert_eq!(InstrFormat::Fixed32.to_string(), "fixed-32");
        assert_eq!(InstrFormat::Mixed.to_string(), "mixed-16/32");
    }
}
