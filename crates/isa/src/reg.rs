//! General-purpose and branch register names.

use std::fmt;

/// One of the eight architecturally visible general-purpose registers.
///
/// The PIPE processor has sixteen 32-bit data registers split into a
/// foreground and a background bank of eight; only the foreground bank is
/// visible at any moment and the banks are swapped with the `xchg`
/// instruction. `r7` is the *queue register*: reading it pops the load
/// queue, writing it pushes the store data queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The queue register (`r7`).
    pub const QUEUE: Reg = Reg(7);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    pub fn new(n: u8) -> Reg {
        assert!(n < 8, "register number out of range: r{n}");
        Reg(n)
    }

    /// Creates a register from its number, returning `None` if out of range.
    pub fn try_new(n: u8) -> Option<Reg> {
        (n < 8).then_some(Reg(n))
    }

    /// The register number, `0..=7`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the queue register `r7`.
    pub fn is_queue(self) -> bool {
        self.0 == 7
    }

    /// Iterates over all eight registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

/// One of the eight branch registers holding branch target addresses.
///
/// Branch registers are separate from the general-purpose registers; they
/// are loaded by `lbr`/`lbrr` and consumed by `pbr` (prepare-to-branch).
/// Keeping targets in dedicated registers lets `pbr` stay a single parcel
/// and lets the compiler load several targets at the top of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchReg(u8);

impl BranchReg {
    /// Creates a branch register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    pub fn new(n: u8) -> BranchReg {
        assert!(n < 8, "branch register number out of range: b{n}");
        BranchReg(n)
    }

    /// Creates a branch register, returning `None` if out of range.
    pub fn try_new(n: u8) -> Option<BranchReg> {
        (n < 8).then_some(BranchReg(n))
    }

    /// The branch register number, `0..=7`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Iterates over all eight branch registers in order.
    pub fn all() -> impl Iterator<Item = BranchReg> {
        (0..8).map(BranchReg)
    }
}

impl fmt::Display for BranchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<BranchReg> for u8 {
    fn from(b: BranchReg) -> u8 {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for n in 0..8 {
            let r = Reg::new(n);
            assert_eq!(r.number(), n);
            assert_eq!(Reg::try_new(n), Some(r));
        }
        assert_eq!(Reg::try_new(8), None);
    }

    #[test]
    #[should_panic]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(8);
    }

    #[test]
    fn queue_register_is_r7() {
        assert!(Reg::QUEUE.is_queue());
        assert_eq!(Reg::QUEUE.number(), 7);
        assert!(!Reg::new(0).is_queue());
    }

    #[test]
    fn branch_reg_roundtrip() {
        for n in 0..8 {
            assert_eq!(BranchReg::new(n).number(), n);
        }
        assert_eq!(BranchReg::try_new(9), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::new(3).to_string(), "r3");
        assert_eq!(BranchReg::new(5).to_string(), "b5");
    }

    #[test]
    fn all_iterators() {
        assert_eq!(Reg::all().count(), 8);
        assert_eq!(BranchReg::all().count(), 8);
    }
}
