//! The decoded instruction representation.

use std::fmt;

use crate::format::InstrFormat;
use crate::reg::{BranchReg, Reg};

/// A three-operand ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition (wrapping).
    Add,
    /// Two's-complement subtraction (wrapping).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount masked to 5 bits).
    Sll,
    /// Logical shift right (amount masked to 5 bits).
    Srl,
    /// Arithmetic shift right (amount masked to 5 bits).
    Sra,
}

impl AluOp {
    /// Evaluates the operation on 32-bit values.
    ///
    /// Shift amounts are masked to the low five bits, matching the barrel
    /// shifter of the PIPE datapath.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
        }
    }

    /// The mnemonic stem (`add`, `sub`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
        }
    }
}

/// The condition tested by a prepare-to-branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Branch unconditionally.
    Always = 0,
    /// Branch if the tested register is zero.
    Eqz = 1,
    /// Branch if the tested register is non-zero.
    Nez = 2,
    /// Branch if the tested register is strictly positive (signed).
    Gtz = 3,
    /// Branch if the tested register is strictly negative (signed).
    Ltz = 4,
    /// Never branch (useful for testing; still occupies the branch pipeline).
    Never = 5,
}

impl Cond {
    /// All condition codes in field-value order.
    pub const ALL: [Cond; 6] = [
        Cond::Always,
        Cond::Eqz,
        Cond::Nez,
        Cond::Gtz,
        Cond::Ltz,
        Cond::Never,
    ];

    /// Decodes a 3-bit condition field.
    pub fn from_bits(bits: u16) -> Option<Cond> {
        Cond::ALL.get(bits as usize).copied()
    }

    /// The 3-bit field value.
    pub fn bits(self) -> u16 {
        self as u16
    }

    /// Evaluates the condition against a register value.
    pub fn eval(self, value: u32) -> bool {
        match self {
            Cond::Always => true,
            Cond::Eqz => value == 0,
            Cond::Nez => value != 0,
            Cond::Gtz => (value as i32) > 0,
            Cond::Ltz => (value as i32) < 0,
            Cond::Never => false,
        }
    }

    /// The mnemonic suffix (empty for `Always`).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Always => "",
            Cond::Eqz => ".eqz",
            Cond::Nez => ".nez",
            Cond::Gtz => ".gtz",
            Cond::Ltz => ".ltz",
            Cond::Never => ".never",
        }
    }
}

/// A fully decoded PIPE instruction.
///
/// The variants map one-to-one onto the encodings defined in
/// [`crate::encode()`]; see the crate-level docs for the architectural
/// meaning of the load/store/queue instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Stop the processor (drains queues, then halts the simulation).
    Halt,
    /// Exchange foreground and background register banks.
    Xchg,
    /// Three-register ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register (writing `r7` pushes the SDQ).
        rd: Reg,
        /// First source (reading `r7` pops the LDQ).
        rs1: Reg,
        /// Second source (reading `r7` pops the LDQ).
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    AluImm {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended 16-bit immediate.
        imm: i16,
    },
    /// Load immediate: `rd = sign_extend(imm)`.
    Lim {
        /// Destination register.
        rd: Reg,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// Load upper immediate: `rd = (imm << 16) | (rd & 0xFFFF)`.
    Lui {
        /// Destination register (low halfword preserved).
        rd: Reg,
        /// Immediate placed in the upper halfword.
        imm: u16,
    },
    /// Data load: push the byte address `rs1 + imm` onto the load address
    /// queue. The loaded value later appears at the head of the load queue,
    /// readable as `r7`.
    Load {
        /// Base address register.
        base: Reg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// Store address: push the byte address `rs1 + imm` onto the store
    /// address queue. It pairs with the next value pushed onto the store
    /// data queue (by an instruction writing `r7`).
    StoreAddr {
        /// Base address register.
        base: Reg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// Load a branch register with an absolute *parcel* address.
    Lbr {
        /// Destination branch register.
        br: BranchReg,
        /// Absolute parcel (16-bit word) address of the target.
        target_parcel: u16,
    },
    /// Load a branch register from a general-purpose register. The register
    /// holds a byte address, which is converted to a parcel address.
    LbrReg {
        /// Destination branch register.
        br: BranchReg,
        /// Source register (byte address of the target).
        rs1: Reg,
    },
    /// Prepare to branch: after `delay` more instructions have executed,
    /// transfer control to the address in `br` if `cond(rs)` holds.
    Pbr {
        /// The tested condition.
        cond: Cond,
        /// Branch register holding the target address.
        br: BranchReg,
        /// Register tested by the condition.
        rs: Reg,
        /// Delay-slot count, `0..=7`.
        delay: u8,
    },
}

impl Instruction {
    /// Returns `true` for prepare-to-branch instructions (the ones whose
    /// first parcel has the branch bit set).
    pub fn is_branch(&self) -> bool {
        matches!(self, Instruction::Pbr { .. })
    }

    /// Returns `true` if the instruction carries a 16-bit immediate and is
    /// two parcels long even in the mixed format.
    pub fn has_immediate(&self) -> bool {
        matches!(
            self,
            Instruction::AluImm { .. }
                | Instruction::Lim { .. }
                | Instruction::Lui { .. }
                | Instruction::Load { .. }
                | Instruction::StoreAddr { .. }
                | Instruction::Lbr { .. }
        )
    }

    /// The size of this instruction, in parcels, under `format`.
    pub fn size_parcels(&self, format: InstrFormat) -> u32 {
        match format {
            InstrFormat::Fixed32 => 2,
            InstrFormat::Mixed => {
                if self.has_immediate() {
                    2
                } else {
                    1
                }
            }
        }
    }

    /// The size of this instruction, in bytes, under `format`.
    pub fn size_bytes(&self, format: InstrFormat) -> u32 {
        self.size_parcels(format) * crate::PARCEL_BYTES
    }

    /// The registers read by this instruction, in operand order.
    pub fn sources(&self) -> SourceRegs {
        let (regs, len) = match *self {
            Instruction::Alu { rs1, rs2, .. } => ([rs1, rs2], 2),
            Instruction::AluImm { rs1, .. } => ([rs1, rs1], 1),
            Instruction::Load { base, .. } | Instruction::StoreAddr { base, .. } => {
                ([base, base], 1)
            }
            Instruction::LbrReg { rs1, .. } => ([rs1, rs1], 1),
            Instruction::Pbr { rs, .. } => ([rs, rs], 1),
            // read-modify-write
            Instruction::Lui { rd, .. } => ([rd, rd], 1),
            _ => ([Reg::new(0), Reg::new(0)], 0),
        };
        SourceRegs { regs, len }
    }

    /// The general-purpose register written by this instruction, if any.
    pub fn destination(&self) -> Option<Reg> {
        match *self {
            Instruction::Alu { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::Lim { rd, .. }
            | Instruction::Lui { rd, .. } => Some(rd),
            _ => None,
        }
    }
}

/// The source registers of an instruction: at most two, held inline so
/// hazard checks on the per-cycle issue path never touch the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceRegs {
    regs: [Reg; 2],
    len: usize,
}

impl SourceRegs {
    /// The sources as a slice, in operand order.
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len]
    }

    /// Whether `reg` appears among the sources.
    pub fn contains(&self, reg: &Reg) -> bool {
        self.as_slice().contains(reg)
    }
}

impl std::ops::Deref for SourceRegs {
    type Target = [Reg];

    fn deref(&self) -> &[Reg] {
        self.as_slice()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Nop => write!(f, "nop"),
            Instruction::Halt => write!(f, "halt"),
            Instruction::Xchg => write!(f, "xchg"),
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instruction::Lim { rd, imm } => write!(f, "lim {rd}, {imm}"),
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instruction::Load { base, disp } => write!(f, "ldw {base}, {disp}"),
            Instruction::StoreAddr { base, disp } => write!(f, "sta {base}, {disp}"),
            Instruction::Lbr { br, target_parcel } => {
                write!(f, "lbr {br}, {:#x}", u32::from(target_parcel) * 2)
            }
            Instruction::LbrReg { br, rs1 } => write!(f, "lbrr {br}, {rs1}"),
            Instruction::Pbr {
                cond,
                br,
                rs,
                delay,
            } => write!(f, "pbr{} {br}, {rs}, {delay}", cond.suffix()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(3, 5), (-2i32) as u32);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 4), 16);
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), u32::MAX);
    }

    #[test]
    fn shift_amount_masked() {
        assert_eq!(AluOp::Sll.eval(1, 32), 1);
        assert_eq!(AluOp::Sll.eval(1, 33), 2);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Always.eval(0));
        assert!(Cond::Eqz.eval(0));
        assert!(!Cond::Eqz.eval(1));
        assert!(Cond::Nez.eval(5));
        assert!(!Cond::Nez.eval(0));
        assert!(Cond::Gtz.eval(1));
        assert!(!Cond::Gtz.eval(0));
        assert!(!Cond::Gtz.eval((-1i32) as u32));
        assert!(Cond::Ltz.eval((-1i32) as u32));
        assert!(!Cond::Ltz.eval(0));
        assert!(!Cond::Never.eval(0));
    }

    #[test]
    fn cond_bits_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), Some(c));
        }
        assert_eq!(Cond::from_bits(6), None);
    }

    #[test]
    fn sizes_by_format() {
        let reg_op = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        };
        let imm_op = Instruction::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            imm: 5,
        };
        assert_eq!(reg_op.size_parcels(InstrFormat::Mixed), 1);
        assert_eq!(reg_op.size_parcels(InstrFormat::Fixed32), 2);
        assert_eq!(imm_op.size_parcels(InstrFormat::Mixed), 2);
        assert_eq!(imm_op.size_parcels(InstrFormat::Fixed32), 2);
        assert_eq!(imm_op.size_bytes(InstrFormat::Fixed32), 4);
    }

    #[test]
    fn branch_detection() {
        let pbr = Instruction::Pbr {
            cond: Cond::Nez,
            br: BranchReg::new(0),
            rs: Reg::new(1),
            delay: 4,
        };
        assert!(pbr.is_branch());
        assert!(!Instruction::Nop.is_branch());
    }

    #[test]
    fn sources_and_destinations() {
        let i = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        };
        assert_eq!(i.sources().as_slice(), &[Reg::new(2), Reg::new(3)]);
        assert_eq!(i.destination(), Some(Reg::new(1)));
        assert_eq!(Instruction::Nop.destination(), None);
        let ld = Instruction::Load {
            base: Reg::new(4),
            disp: -8,
        };
        assert_eq!(ld.sources().as_slice(), &[Reg::new(4)]);
        assert_eq!(ld.destination(), None);
    }
}
