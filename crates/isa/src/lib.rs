//! # pipe-isa
//!
//! The PIPE instruction set architecture, as used by the reproduction of
//! Farrens & Pleszkun, *Improving Performance of Small On-Chip Instruction
//! Caches* (ISCA 1989).
//!
//! PIPE is a 32-bit register-to-register (load/store) architecture with
//! 16-bit instruction *parcels*: an instruction is either one or two parcels
//! long. The paper's presented simulations use a **fixed 32-bit format**
//! (every instruction occupies two parcels / 4 bytes); the real chip mixes
//! 16- and 32-bit instructions. Both formats are supported here, selected by
//! [`InstrFormat`].
//!
//! Key architectural features modeled by this crate:
//!
//! * Eight visible 32-bit registers `r0..r7`, with a foreground/background
//!   bank exchange instruction ([`Instruction::Xchg`]). `r7` is the *queue
//!   register*: reading it pops the load queue (LDQ), writing it pushes the
//!   store data queue (SDQ). The queue semantics themselves live in
//!   `pipe-core`; this crate only defines the encoding.
//! * Eight *branch registers* `b0..b7` holding branch target addresses,
//!   loaded with [`Instruction::Lbr`] / [`Instruction::LbrReg`].
//! * The *prepare-to-branch* instruction ([`Instruction::Pbr`]) carrying a
//!   condition, a branch register, a tested register and a 3-bit delay-slot
//!   count (0–7). A single bit of the first parcel (bit 15, the *branch
//!   bit*) identifies PBR instructions, which is what lets the PIPE fetch
//!   logic scan the instruction queue for upcoming branches.
//!
//! ## Quick example
//!
//! ```
//! use pipe_isa::{Assembler, InstrFormat};
//!
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble(
//!         r#"
//!         lim   r1, 10        ; loop counter
//!         lbr   b0, top
//! top:    subi  r1, r1, 1
//!         pbr.nez b0, r1, 0   ; loop while r1 != 0
//!         halt
//!         "#,
//!     )
//!     .expect("assembles");
//! assert!(program.parcels().len() > 0);
//! ```

pub mod asm;
pub mod binfmt;
pub mod decode;
pub mod decoded;
pub mod disasm;
pub mod encode;
pub mod format;
pub mod instruction;
pub mod opcode;
pub mod program;
pub mod reg;

pub use asm::{AsmError, Assembler};
pub use binfmt::{read_program, write_program, BinError};
pub use decode::{decode, DecodeError};
pub use decoded::DecodedProgram;
pub use disasm::disassemble;
pub use encode::encode;
pub use format::InstrFormat;
pub use instruction::{AluOp, Cond, Instruction, SourceRegs};
pub use opcode::Opcode;
pub use program::{Program, ProgramBuilder};
pub use reg::{BranchReg, Reg};

/// Number of bytes in one instruction parcel.
pub const PARCEL_BYTES: u32 = 2;

/// Base byte address of the memory-mapped floating-point unit.
///
/// Storing an operand to [`FPU_OPERAND_A`] and then a second operand to one
/// of the operation addresses triggers a floating-point operation whose
/// result is returned to the processor's load queue (see `pipe-mem`).
pub const FPU_BASE: u32 = 0xFFFF_F000;
/// Address of the FPU's first-operand register.
pub const FPU_OPERAND_A: u32 = FPU_BASE;
/// Storing the second operand here triggers a multiply.
pub const FPU_OP_MUL: u32 = FPU_BASE + 4;
/// Storing the second operand here triggers an addition.
pub const FPU_OP_ADD: u32 = FPU_BASE + 8;
/// Storing the second operand here triggers a subtraction.
pub const FPU_OP_SUB: u32 = FPU_BASE + 12;
/// Storing the second operand here triggers a division.
pub const FPU_OP_DIV: u32 = FPU_BASE + 16;

/// Returns `true` if `addr` falls inside the memory-mapped FPU window.
pub fn is_fpu_address(addr: u32) -> bool {
    (FPU_BASE..FPU_BASE + 0x20).contains(&addr)
}
