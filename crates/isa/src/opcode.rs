//! Opcode numbering and encoding properties.

use std::fmt;

/// Bit 15 of the first parcel: set for prepare-to-branch instructions.
///
/// The paper relies on branches being identifiable from a single opcode bit
/// so the fetch logic can scan the instruction queue for upcoming branches
/// without a full decode.
pub const BRANCH_BIT: u16 = 0x8000;

/// The non-branch opcode space (bits 14..10 of the first parcel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// Stop the processor (simulation convention; drains queues first).
    Halt = 1,
    /// Exchange foreground and background register banks.
    Xchg = 2,
    /// `add rd, rs1, rs2`
    Add = 3,
    /// `sub rd, rs1, rs2`
    Sub = 4,
    /// `and rd, rs1, rs2`
    And = 5,
    /// `or rd, rs1, rs2`
    Or = 6,
    /// `xor rd, rs1, rs2`
    Xor = 7,
    /// `sll rd, rs1, rs2` — shift left logical by register.
    Sll = 8,
    /// `srl rd, rs1, rs2` — shift right logical by register.
    Srl = 9,
    /// `sra rd, rs1, rs2` — shift right arithmetic by register.
    Sra = 10,
    /// `addi rd, rs1, imm16`
    Addi = 11,
    /// `subi rd, rs1, imm16`
    Subi = 12,
    /// `andi rd, rs1, imm16`
    Andi = 13,
    /// `ori rd, rs1, imm16`
    Ori = 14,
    /// `xori rd, rs1, imm16`
    Xori = 15,
    /// `slli rd, rs1, imm16`
    Slli = 16,
    /// `srli rd, rs1, imm16`
    Srli = 17,
    /// `srai rd, rs1, imm16`
    Srai = 18,
    /// `lim rd, imm16` — load sign-extended immediate.
    Lim = 19,
    /// `lui rd, imm16` — load immediate into the upper halfword.
    Lui = 20,
    /// `ldw rs1, imm16` — push `rs1 + imm` onto the load address queue.
    Ldw = 21,
    /// `sta rs1, imm16` — push `rs1 + imm` onto the store address queue.
    Sta = 22,
    /// `lbr bN, imm16` — load a branch register with a parcel address.
    Lbr = 23,
    /// `lbrr bN, rs1` — load a branch register from a register.
    LbrReg = 24,
}

impl Opcode {
    /// All defined opcodes, in numbering order.
    pub const ALL: [Opcode; 25] = [
        Opcode::Nop,
        Opcode::Halt,
        Opcode::Xchg,
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Addi,
        Opcode::Subi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Lim,
        Opcode::Lui,
        Opcode::Ldw,
        Opcode::Sta,
        Opcode::Lbr,
        Opcode::LbrReg,
    ];

    /// Decodes a 5-bit opcode field value.
    pub fn from_bits(bits: u16) -> Option<Opcode> {
        Opcode::ALL.get(bits as usize).copied()
    }

    /// The 5-bit field value of this opcode.
    pub fn bits(self) -> u16 {
        self as u16
    }

    /// Returns `true` if this opcode carries a 16-bit immediate and is
    /// therefore always two parcels long, even in the mixed format.
    pub fn has_immediate(self) -> bool {
        matches!(
            self,
            Opcode::Addi
                | Opcode::Subi
                | Opcode::Andi
                | Opcode::Ori
                | Opcode::Xori
                | Opcode::Slli
                | Opcode::Srli
                | Opcode::Srai
                | Opcode::Lim
                | Opcode::Lui
                | Opcode::Ldw
                | Opcode::Sta
                | Opcode::Lbr
        )
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Halt => "halt",
            Opcode::Xchg => "xchg",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Sll => "sll",
            Opcode::Srl => "srl",
            Opcode::Sra => "sra",
            Opcode::Addi => "addi",
            Opcode::Subi => "subi",
            Opcode::Andi => "andi",
            Opcode::Ori => "ori",
            Opcode::Xori => "xori",
            Opcode::Slli => "slli",
            Opcode::Srli => "srli",
            Opcode::Srai => "srai",
            Opcode::Lim => "lim",
            Opcode::Lui => "lui",
            Opcode::Ldw => "ldw",
            Opcode::Sta => "sta",
            Opcode::Lbr => "lbr",
            Opcode::LbrReg => "lbrr",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_bits(op.bits()), Some(op));
        }
    }

    #[test]
    fn out_of_range_bits() {
        assert_eq!(Opcode::from_bits(25), None);
        assert_eq!(Opcode::from_bits(31), None);
    }

    #[test]
    fn immediate_classification() {
        assert!(Opcode::Addi.has_immediate());
        assert!(Opcode::Ldw.has_immediate());
        assert!(Opcode::Lbr.has_immediate());
        assert!(!Opcode::Add.has_immediate());
        assert!(!Opcode::Nop.has_immediate());
        assert!(!Opcode::LbrReg.has_immediate());
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate: {op}");
        }
    }
}
