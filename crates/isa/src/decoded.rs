//! Predecoded program images.
//!
//! The simulator's hot loop used to call [`decode`] on every issue
//! attempt, re-deriving the same [`Instruction`] for the same static
//! parcel address millions of times per run. A [`DecodedProgram`] pays
//! that cost once: it decodes the image at every parcel offset up front,
//! so fetch engines that serve parcels straight from the image can hand
//! the core a parcel *index* and the core looks the instruction up by
//! value.
//!
//! Decoding is performed at **every** parcel offset — not just
//! instruction boundaries — because where instruction boundaries fall
//! depends on the dynamic fetch stream (branch targets can land
//! mid-image under the Mixed format). Slot `i` holds exactly what
//! `decode(parcels[i], parcels.get(i + 1))` would return, including the
//! error, so the lookup is bit-for-bit equivalent to decoding at issue
//! time no matter which addresses the front end actually fetches.

use crate::decode::{decode, DecodeError};
use crate::instruction::Instruction;
use crate::program::Program;
use crate::PARCEL_BYTES;

/// A [`Program`] plus a table of the decode result at every parcel
/// offset of its image.
///
/// Construction walks the image once; lookups are a bounds-checked
/// array read. The table is immutable and safely shareable across
/// threads (wrap it in an `Arc` to share one predecode across a sweep).
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    program: Program,
    slots: Box<[Result<Instruction, DecodeError>]>,
}

impl DecodedProgram {
    /// Predecodes `program`, computing `decode(parcels[i], parcels[i+1])`
    /// for every parcel offset `i`.
    pub fn new(program: Program) -> DecodedProgram {
        let parcels = program.parcels();
        let slots = (0..parcels.len())
            .map(|i| decode(parcels[i], parcels.get(i + 1).copied()))
            .collect();
        DecodedProgram { program, slots }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The decode result at parcel index `index` (the offset of the
    /// instruction's first parcel from the image base, in parcels), or
    /// `None` outside the image.
    #[inline]
    pub fn get(&self, index: usize) -> Option<Result<Instruction, DecodeError>> {
        self.slots.get(index).copied()
    }

    /// The decode result at byte address `addr`, or `None` outside the
    /// image. `addr` must be parcel-aligned.
    #[inline]
    pub fn at_addr(&self, addr: u32) -> Option<Result<Instruction, DecodeError>> {
        debug_assert_eq!(addr % PARCEL_BYTES, 0, "unaligned parcel address");
        let base = self.program.base();
        if addr < base {
            return None;
        }
        self.get(((addr - base) / PARCEL_BYTES) as usize)
    }

    /// Number of predecoded slots (one per parcel of the image).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` for an empty image.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::InstrFormat;
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;

    fn sample(format: InstrFormat) -> Program {
        let mut b = ProgramBuilder::new(format);
        b.push(Instruction::Lim {
            rd: Reg::new(1),
            imm: 3,
        });
        b.push(Instruction::Lui {
            rd: Reg::new(2),
            imm: 7,
        });
        b.push(Instruction::Halt);
        b.build().unwrap()
    }

    #[test]
    fn every_slot_matches_issue_time_decode() {
        for format in [InstrFormat::Fixed32, InstrFormat::Mixed] {
            let program = sample(format);
            let decoded = DecodedProgram::new(program.clone());
            let parcels = program.parcels();
            assert_eq!(decoded.len(), parcels.len());
            for i in 0..parcels.len() {
                let expect = decode(parcels[i], parcels.get(i + 1).copied());
                assert_eq!(decoded.get(i), Some(expect), "slot {i} ({format:?})");
            }
            assert_eq!(decoded.get(parcels.len()), None);
        }
    }

    #[test]
    fn at_addr_honors_base() {
        let mut b = ProgramBuilder::with_base(InstrFormat::Fixed32, 0x100);
        b.push(Instruction::Halt);
        let decoded = DecodedProgram::new(b.build().unwrap());
        assert_eq!(decoded.at_addr(0x100), Some(Ok(Instruction::Halt)));
        assert_eq!(decoded.at_addr(0x0), None);
        assert_eq!(decoded.at_addr(decoded.program().end()), None);
    }

    #[test]
    fn empty_program_is_empty() {
        let b = ProgramBuilder::new(InstrFormat::Fixed32);
        let decoded = DecodedProgram::new(b.build().unwrap());
        assert!(decoded.is_empty());
        assert_eq!(decoded.get(0), None);
    }
}
