//! A simple binary container for assembled programs.
//!
//! Lets `pipe-asm` write an assembled image that `pipe-sim` (or any other
//! tool) can load without re-assembling. The format is little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PIPE"
//! 4       1     version (currently 1)
//! 5       1     instruction format (0 = fixed-32, 1 = mixed)
//! 6       2     reserved (zero)
//! 8       4     base byte address
//! 12      4     entry byte address
//! 16      4     parcel count N
//! 20      2N    parcels
//! ...     4     symbol count S
//!         each: u16 name length, name bytes (UTF-8), u32 byte address
//! ...     4     data word count D
//!         each: u32 byte address, u32 value
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::format::InstrFormat;
use crate::program::Program;

/// Magic bytes identifying the container.
pub const MAGIC: [u8; 4] = *b"PIPE";
/// Current container version.
pub const VERSION: u8 = 1;

/// An error produced while loading a binary program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u8),
    /// Unknown instruction-format code.
    BadFormat(u8),
    /// The file ended before a field completed.
    Truncated,
    /// A symbol name was not valid UTF-8.
    BadSymbolName,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic => f.write_str("not a PIPE program (bad magic)"),
            BinError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            BinError::BadFormat(v) => write!(f, "unknown instruction format code {v}"),
            BinError::Truncated => f.write_str("truncated file"),
            BinError::BadSymbolName => f.write_str("symbol name is not valid UTF-8"),
        }
    }
}

impl Error for BinError {}

fn format_code(format: InstrFormat) -> u8 {
    match format {
        InstrFormat::Fixed32 => 0,
        InstrFormat::Mixed => 1,
    }
}

fn format_from_code(code: u8) -> Result<InstrFormat, BinError> {
    match code {
        0 => Ok(InstrFormat::Fixed32),
        1 => Ok(InstrFormat::Mixed),
        other => Err(BinError::BadFormat(other)),
    }
}

/// Serializes a program into the binary container.
pub fn write_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + program.parcels().len() * 2);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(format_code(program.format()));
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&program.base().to_le_bytes());
    out.extend_from_slice(&program.entry().to_le_bytes());
    out.extend_from_slice(&(program.parcels().len() as u32).to_le_bytes());
    for p in program.parcels() {
        out.extend_from_slice(&p.to_le_bytes());
    }
    // Symbols, sorted for deterministic output.
    let mut symbols: Vec<(&String, &u32)> = program.symbols().iter().collect();
    symbols.sort();
    out.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
    for (name, addr) in symbols {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&addr.to_le_bytes());
    }
    out.extend_from_slice(&(program.data().len() as u32).to_le_bytes());
    for (addr, value) in program.data() {
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let end = self.pos.checked_add(n).ok_or(BinError::Truncated)?;
        if end > self.bytes.len() {
            return Err(BinError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, BinError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
}

/// Deserializes a program from the binary container.
///
/// # Errors
///
/// Returns [`BinError`] for malformed input.
pub fn read_program(bytes: &[u8]) -> Result<Program, BinError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(BinError::BadVersion(version));
    }
    let format = format_from_code(r.u8()?)?;
    r.take(2)?; // reserved
    let base = r.u32()?;
    let entry = r.u32()?;
    let n = r.u32()? as usize;
    let mut parcels = Vec::with_capacity(n);
    for _ in 0..n {
        parcels.push(r.u16()?);
    }
    let s = r.u32()? as usize;
    let mut symbols = HashMap::with_capacity(s);
    for _ in 0..s {
        let len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(len)?)
            .map_err(|_| BinError::BadSymbolName)?
            .to_string();
        let addr = r.u32()?;
        symbols.insert(name, addr);
    }
    let d = r.u32()? as usize;
    let mut data = Vec::with_capacity(d);
    for _ in 0..d {
        let addr = r.u32()?;
        let value = r.u32()?;
        data.push((addr, value));
    }
    Ok(Program::from_raw(
        parcels, base, entry, format, symbols, data,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn sample(format: InstrFormat) -> Program {
        Assembler::new(format)
            .assemble(
                "lim r1, 5\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n.data 0x1000, 42\n",
            )
            .unwrap()
    }

    #[test]
    fn roundtrip_both_formats() {
        for format in InstrFormat::ALL {
            let p = sample(format);
            let bytes = write_program(&p);
            let q = read_program(&bytes).unwrap();
            assert_eq!(q.parcels(), p.parcels());
            assert_eq!(q.base(), p.base());
            assert_eq!(q.entry(), p.entry());
            assert_eq!(q.format(), p.format());
            assert_eq!(q.symbols(), p.symbols());
            assert_eq!(q.data(), p.data());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            read_program(b"ELF!whatever").unwrap_err(),
            BinError::BadMagic
        );
        assert_eq!(read_program(b"PI").unwrap_err(), BinError::Truncated);
        let mut bytes = write_program(&sample(InstrFormat::Fixed32));
        bytes[4] = 99;
        assert_eq!(read_program(&bytes).unwrap_err(), BinError::BadVersion(99));
        let mut bytes = write_program(&sample(InstrFormat::Fixed32));
        bytes[5] = 7;
        assert_eq!(read_program(&bytes).unwrap_err(), BinError::BadFormat(7));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = write_program(&sample(InstrFormat::Fixed32));
        for cut in 0..bytes.len() {
            assert!(
                read_program(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        assert!(read_program(&bytes).is_ok());
    }
}
