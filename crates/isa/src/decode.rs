//! Instruction decoding from 16-bit parcels.

use std::error::Error;
use std::fmt;

use crate::encode::{parcel_has_ext, parcel_is_branch};
use crate::instruction::{AluOp, Cond, Instruction};
use crate::opcode::Opcode;
use crate::reg::{BranchReg, Reg};

/// An error produced while decoding a parcel pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name a defined opcode.
    UnknownOpcode(u16),
    /// The condition field of a PBR does not name a defined condition.
    UnknownCond(u16),
    /// The first parcel requires an immediate parcel, but none was supplied.
    MissingImmediate,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(bits) => write!(f, "unknown opcode field {bits:#x}"),
            DecodeError::UnknownCond(bits) => write!(f, "unknown condition field {bits:#x}"),
            DecodeError::MissingImmediate => f.write_str("missing immediate parcel"),
        }
    }
}

impl Error for DecodeError {}

/// Returns how many parcels the instruction starting with `first` occupies.
pub fn instr_len(first: u16) -> usize {
    if parcel_has_ext(first) {
        2
    } else {
        1
    }
}

/// Decodes an instruction from its first parcel and (if the `ext` bit is
/// set) the immediate parcel.
///
/// # Errors
///
/// Returns [`DecodeError::MissingImmediate`] when `first` requires an
/// immediate but `second` is `None`, and [`DecodeError::UnknownOpcode`] /
/// [`DecodeError::UnknownCond`] for encodings outside the defined space.
pub fn decode(first: u16, second: Option<u16>) -> Result<Instruction, DecodeError> {
    let imm = if parcel_has_ext(first) {
        Some(second.ok_or(DecodeError::MissingImmediate)?)
    } else {
        None
    };

    if parcel_is_branch(first) {
        let cond_bits = (first >> 12) & 0b111;
        let cond = Cond::from_bits(cond_bits).ok_or(DecodeError::UnknownCond(cond_bits))?;
        let br = BranchReg::new(((first >> 9) & 0b111) as u8);
        let delay = ((first >> 6) & 0b111) as u8;
        let rs = Reg::new(((first >> 3) & 0b111) as u8);
        return Ok(Instruction::Pbr {
            cond,
            br,
            rs,
            delay,
        });
    }

    let op_bits = (first >> 10) & 0b1_1111;
    let opcode = Opcode::from_bits(op_bits).ok_or(DecodeError::UnknownOpcode(op_bits))?;
    let rd = Reg::new(((first >> 7) & 0b111) as u8);
    let rs1 = Reg::new(((first >> 4) & 0b111) as u8);
    let rs2 = Reg::new(((first >> 1) & 0b111) as u8);
    // `imm` is only meaningful for immediate opcodes; a fixed-32 padding
    // parcel decodes as zero and is ignored below.
    let imm_i16 = imm.unwrap_or(0) as i16;
    let imm_u16 = imm.unwrap_or(0);

    let instr = match opcode {
        Opcode::Nop => Instruction::Nop,
        Opcode::Halt => Instruction::Halt,
        Opcode::Xchg => Instruction::Xchg,
        Opcode::Add => alu(AluOp::Add, rd, rs1, rs2),
        Opcode::Sub => alu(AluOp::Sub, rd, rs1, rs2),
        Opcode::And => alu(AluOp::And, rd, rs1, rs2),
        Opcode::Or => alu(AluOp::Or, rd, rs1, rs2),
        Opcode::Xor => alu(AluOp::Xor, rd, rs1, rs2),
        Opcode::Sll => alu(AluOp::Sll, rd, rs1, rs2),
        Opcode::Srl => alu(AluOp::Srl, rd, rs1, rs2),
        Opcode::Sra => alu(AluOp::Sra, rd, rs1, rs2),
        Opcode::Addi => alu_imm(AluOp::Add, rd, rs1, imm_i16),
        Opcode::Subi => alu_imm(AluOp::Sub, rd, rs1, imm_i16),
        Opcode::Andi => alu_imm(AluOp::And, rd, rs1, imm_i16),
        Opcode::Ori => alu_imm(AluOp::Or, rd, rs1, imm_i16),
        Opcode::Xori => alu_imm(AluOp::Xor, rd, rs1, imm_i16),
        Opcode::Slli => alu_imm(AluOp::Sll, rd, rs1, imm_i16),
        Opcode::Srli => alu_imm(AluOp::Srl, rd, rs1, imm_i16),
        Opcode::Srai => alu_imm(AluOp::Sra, rd, rs1, imm_i16),
        Opcode::Lim => Instruction::Lim { rd, imm: imm_i16 },
        Opcode::Lui => Instruction::Lui { rd, imm: imm_u16 },
        Opcode::Ldw => Instruction::Load {
            base: rs1,
            disp: imm_i16,
        },
        Opcode::Sta => Instruction::StoreAddr {
            base: rs1,
            disp: imm_i16,
        },
        Opcode::Lbr => Instruction::Lbr {
            br: BranchReg::new(rd.number()),
            target_parcel: imm_u16,
        },
        Opcode::LbrReg => Instruction::LbrReg {
            br: BranchReg::new(rd.number()),
            rs1,
        },
    };
    Ok(instr)
}

fn alu(op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
    Instruction::Alu { op, rd, rs1, rs2 }
}

fn alu_imm(op: AluOp, rd: Reg, rs1: Reg, imm: i16) -> Instruction {
    Instruction::AluImm { op, rd, rs1, imm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::format::InstrFormat;

    fn roundtrip(i: Instruction, f: InstrFormat) {
        let e = encode(&i, f);
        let p = e.parcels();
        let decoded = decode(p[0], p.get(1).copied()).expect("decodes");
        assert_eq!(decoded, i, "format {f}");
    }

    #[test]
    fn roundtrip_all_shapes() {
        let cases = [
            Instruction::Nop,
            Instruction::Halt,
            Instruction::Xchg,
            Instruction::Alu {
                op: AluOp::Xor,
                rd: Reg::new(5),
                rs1: Reg::new(6),
                rs2: Reg::new(7),
            },
            Instruction::AluImm {
                op: AluOp::Sra,
                rd: Reg::new(0),
                rs1: Reg::new(1),
                imm: -32768,
            },
            Instruction::Lim {
                rd: Reg::new(2),
                imm: 32767,
            },
            Instruction::Lui {
                rd: Reg::new(3),
                imm: 0xBEEF,
            },
            Instruction::Load {
                base: Reg::new(4),
                disp: -4,
            },
            Instruction::StoreAddr {
                base: Reg::new(5),
                disp: 100,
            },
            Instruction::Lbr {
                br: BranchReg::new(6),
                target_parcel: 0x1234,
            },
            Instruction::LbrReg {
                br: BranchReg::new(7),
                rs1: Reg::new(0),
            },
            Instruction::Pbr {
                cond: Cond::Gtz,
                br: BranchReg::new(1),
                rs: Reg::new(2),
                delay: 7,
            },
        ];
        for i in cases {
            for f in InstrFormat::ALL {
                roundtrip(i, f);
            }
        }
    }

    #[test]
    fn missing_immediate_is_an_error() {
        let e = encode(
            &Instruction::Lim {
                rd: Reg::new(0),
                imm: 1,
            },
            InstrFormat::Mixed,
        );
        assert_eq!(
            decode(e.parcels()[0], None),
            Err(DecodeError::MissingImmediate)
        );
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        // Opcode field 31 is undefined; ext bit clear.
        let bad = 31u16 << 10;
        assert_eq!(decode(bad, None), Err(DecodeError::UnknownOpcode(31)));
    }

    #[test]
    fn unknown_cond_is_an_error() {
        // Branch bit set, cond field 7 undefined.
        let bad = 0x8000 | (7u16 << 12);
        assert_eq!(decode(bad, None), Err(DecodeError::UnknownCond(7)));
    }

    #[test]
    fn instr_len_follows_ext_bit() {
        let one = encode(&Instruction::Nop, InstrFormat::Mixed);
        assert_eq!(instr_len(one.parcels()[0]), 1);
        let two = encode(&Instruction::Nop, InstrFormat::Fixed32);
        assert_eq!(instr_len(two.parcels()[0]), 2);
    }
}
