//! A small text assembler for PIPE programs.
//!
//! The syntax is line-oriented:
//!
//! ```text
//!         lim   r1, 100        ; comments start with ';' or '#'
//!         lbr   b0, loop       ; labels resolve to byte addresses
//! loop:   ldw   r2, 8
//!         or    r7, r7, r7
//!         subi  r1, r1, 1
//!         pbr.nez b0, r1, 2    ; condition suffix, branch reg, tested reg, delay
//!         nop
//!         nop
//!         halt
//! .data 0x1000, 42             ; initial data word
//! ```
//!
//! All instructions listed in [`crate::opcode::Opcode`] are accepted, plus
//! `pbr` with an optional condition suffix (`pbr` alone branches always).
//!
//! Directives: `.data addr, value` (initial data word), `.equ NAME, value`
//! (named constant, usable as any immediate), `.align bytes` (nop padding
//! to a power-of-two boundary).
//!
//! Pseudo-instructions: `mov rd, rs` (or-copy), `li32 rd, imm32`
//! (lim + lui pair), `push rs` (write `r7` — SDQ push), `pop rd` (read
//! `r7` — LDQ pop).

use std::error::Error;
use std::fmt;

use crate::format::InstrFormat;
use crate::instruction::{AluOp, Cond, Instruction};
use crate::program::{BuildError, Program, ProgramBuilder};
use crate::reg::{BranchReg, Reg};

/// An error produced by [`Assembler::assemble`], tagged with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    kind: AsmErrorKind,
}

impl AsmError {
    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error category.
    pub fn kind(&self) -> &AsmErrorKind {
        &self.kind
    }
}

/// The category of an assembly error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownMnemonic(String),
    /// Wrong operand count or malformed operand.
    BadOperands(String),
    /// An immediate failed to parse or was out of range.
    BadImmediate(String),
    /// A register name failed to parse.
    BadRegister(String),
    /// An error from program building (labels).
    Build(BuildError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadOperands(s) => write!(f, "bad operands: {s}"),
            AsmErrorKind::BadImmediate(s) => write!(f, "bad immediate `{s}`"),
            AsmErrorKind::BadRegister(s) => write!(f, "bad register `{s}`"),
            AsmErrorKind::Build(e) => write!(f, "{e}"),
        }
    }
}

impl Error for AsmError {}

/// Assembles PIPE assembly text into a [`Program`].
#[derive(Debug, Clone)]
pub struct Assembler {
    format: InstrFormat,
    base: u32,
}

impl Assembler {
    /// Creates an assembler targeting `format`, with code based at 0.
    pub fn new(format: InstrFormat) -> Assembler {
        Assembler { format, base: 0 }
    }

    /// Sets the code base address (parcel-aligned).
    pub fn base(mut self, base: u32) -> Assembler {
        self.base = base;
        self
    }

    /// Assembles `source` into a program.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] identifying the offending source line for
    /// syntax problems, or wrapping a [`BuildError`] for label problems.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let mut builder = ProgramBuilder::with_base(self.format, self.base);
        let mut equs = std::collections::HashMap::new();
        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            parse_line(line, line_no, &mut builder, &mut equs)?;
        }
        builder.build().map_err(|e| AsmError {
            line: 0,
            kind: AsmErrorKind::Build(e),
        })
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn err(line: usize, kind: AsmErrorKind) -> AsmError {
    AsmError { line, kind }
}

fn parse_line(
    line: &str,
    no: usize,
    b: &mut ProgramBuilder,
    equs: &mut std::collections::HashMap<String, i64>,
) -> Result<(), AsmError> {
    let mut rest = line;
    // Leading labels (there may be several on one line).
    while let Some(colon) = rest.find(':') {
        let (label, after) = rest.split_at(colon);
        let label = label.trim();
        if label.is_empty() || !is_ident(label) {
            break;
        }
        b.label(label);
        rest = after[1..].trim_start();
    }
    if rest.is_empty() {
        return Ok(());
    }
    let (mnemonic, operands) = match rest.find(char::is_whitespace) {
        Some(pos) => (&rest[..pos], rest[pos..].trim()),
        None => (rest, ""),
    };
    let ops: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };
    parse_instr(mnemonic, &ops, no, b, equs)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_reg(s: &str, no: usize) -> Result<Reg, AsmError> {
    s.strip_prefix(['r', 'R'])
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::try_new)
        .ok_or_else(|| err(no, AsmErrorKind::BadRegister(s.to_string())))
}

fn parse_breg(s: &str, no: usize) -> Result<BranchReg, AsmError> {
    s.strip_prefix(['b', 'B'])
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(BranchReg::try_new)
        .ok_or_else(|| err(no, AsmErrorKind::BadRegister(s.to_string())))
}

fn parse_int(
    s: &str,
    no: usize,
    equs: &std::collections::HashMap<String, i64>,
) -> Result<i64, AsmError> {
    if let Some(&v) = equs.get(s) {
        return Ok(v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(no, AsmErrorKind::BadImmediate(s.to_string())))?;
    Ok(if neg { -value } else { value })
}

fn parse_i16(
    s: &str,
    no: usize,
    equs: &std::collections::HashMap<String, i64>,
) -> Result<i16, AsmError> {
    let v = parse_int(s, no, equs)?;
    // Accept both signed and unsigned 16-bit spellings (e.g. 0xFFFF).
    if (-(1 << 15)..(1 << 16)).contains(&v) {
        Ok(v as u16 as i16)
    } else {
        Err(err(no, AsmErrorKind::BadImmediate(s.to_string())))
    }
}

fn parse_u16(
    s: &str,
    no: usize,
    equs: &std::collections::HashMap<String, i64>,
) -> Result<u16, AsmError> {
    let v = parse_int(s, no, equs)?;
    u16::try_from(v).map_err(|_| err(no, AsmErrorKind::BadImmediate(s.to_string())))
}

fn want(ops: &[&str], n: usize, no: usize) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(err(
            no,
            AsmErrorKind::BadOperands(format!("expected {n} operands, got {}", ops.len())),
        ))
    }
}

fn alu_op(stem: &str) -> Option<AluOp> {
    Some(match stem {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        _ => return None,
    })
}

fn parse_instr(
    mnemonic: &str,
    ops: &[&str],
    no: usize,
    b: &mut ProgramBuilder,
    equs: &mut std::collections::HashMap<String, i64>,
) -> Result<(), AsmError> {
    let m = mnemonic.to_ascii_lowercase();

    // pbr and its condition suffixes.
    if let Some(rest) = m.strip_prefix("pbr") {
        let cond = match rest {
            "" => Cond::Always,
            ".eqz" => Cond::Eqz,
            ".nez" => Cond::Nez,
            ".gtz" => Cond::Gtz,
            ".ltz" => Cond::Ltz,
            ".never" => Cond::Never,
            _ => return Err(err(no, AsmErrorKind::UnknownMnemonic(mnemonic.into()))),
        };
        want(ops, 3, no)?;
        let br = parse_breg(ops[0], no)?;
        let rs = parse_reg(ops[1], no)?;
        let delay = parse_int(ops[2], no, equs)?;
        if !(0..8).contains(&delay) {
            return Err(err(no, AsmErrorKind::BadImmediate(ops[2].into())));
        }
        b.push(Instruction::Pbr {
            cond,
            br,
            rs,
            delay: delay as u8,
        });
        return Ok(());
    }

    // `.data addr, value` directive.
    if m == ".data" {
        want(ops, 2, no)?;
        let addr = parse_int(ops[0], no, equs)?;
        let value = parse_int(ops[1], no, equs)?;
        b.data_word(addr as u32, value as u32);
        return Ok(());
    }

    // `.equ NAME, value` — a named constant usable as any immediate.
    if m == ".equ" {
        want(ops, 2, no)?;
        if !is_ident(ops[0]) {
            return Err(err(
                no,
                AsmErrorKind::BadOperands(format!("`{}` is not a valid constant name", ops[0])),
            ));
        }
        let value = parse_int(ops[1], no, equs)?;
        equs.insert(ops[0].to_string(), value);
        return Ok(());
    }

    // `.align bytes` — pad with nops to a power-of-two boundary.
    if m == ".align" {
        want(ops, 1, no)?;
        let align = parse_int(ops[0], no, equs)?;
        b.align(align as u32);
        return Ok(());
    }

    // Pseudo-instructions.
    match m.as_str() {
        // `mov rd, rs` → `or rd, rs, rs`
        "mov" => {
            want(ops, 2, no)?;
            let rd = parse_reg(ops[0], no)?;
            let rs = parse_reg(ops[1], no)?;
            b.push(Instruction::Alu {
                op: AluOp::Or,
                rd,
                rs1: rs,
                rs2: rs,
            });
            return Ok(());
        }
        // `li32 rd, imm32` → `lim rd, low16` ; `lui rd, high16`
        "li32" => {
            want(ops, 2, no)?;
            let rd = parse_reg(ops[0], no)?;
            let v = parse_int(ops[1], no, equs)?;
            if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                return Err(err(no, AsmErrorKind::BadImmediate(ops[1].into())));
            }
            let v = v as u32;
            b.push(Instruction::Lim {
                rd,
                imm: (v & 0xFFFF) as u16 as i16,
            });
            b.push(Instruction::Lui {
                rd,
                imm: (v >> 16) as u16,
            });
            return Ok(());
        }
        // `push rs` → `or r7, rs, rs` (SDQ push)
        "push" => {
            want(ops, 1, no)?;
            let rs = parse_reg(ops[0], no)?;
            b.push(Instruction::Alu {
                op: AluOp::Or,
                rd: Reg::QUEUE,
                rs1: rs,
                rs2: rs,
            });
            return Ok(());
        }
        // `pop rd` → `or rd, r7, r7` (LDQ pop)
        "pop" => {
            want(ops, 1, no)?;
            let rd = parse_reg(ops[0], no)?;
            b.push(Instruction::Alu {
                op: AluOp::Or,
                rd,
                rs1: Reg::QUEUE,
                rs2: Reg::QUEUE,
            });
            return Ok(());
        }
        _ => {}
    }

    // Immediate ALU forms (addi, subi, ... but not the register forms).
    if let Some(stem) = m.strip_suffix('i') {
        if let Some(op) = alu_op(stem) {
            want(ops, 3, no)?;
            let rd = parse_reg(ops[0], no)?;
            let rs1 = parse_reg(ops[1], no)?;
            let imm = parse_i16(ops[2], no, equs)?;
            b.push(Instruction::AluImm { op, rd, rs1, imm });
            return Ok(());
        }
    }

    if let Some(op) = alu_op(&m) {
        want(ops, 3, no)?;
        let rd = parse_reg(ops[0], no)?;
        let rs1 = parse_reg(ops[1], no)?;
        let rs2 = parse_reg(ops[2], no)?;
        b.push(Instruction::Alu { op, rd, rs1, rs2 });
        return Ok(());
    }

    match m.as_str() {
        "nop" => {
            want(ops, 0, no)?;
            b.push(Instruction::Nop);
        }
        "halt" => {
            want(ops, 0, no)?;
            b.push(Instruction::Halt);
        }
        "xchg" => {
            want(ops, 0, no)?;
            b.push(Instruction::Xchg);
        }
        "lim" => {
            want(ops, 2, no)?;
            let rd = parse_reg(ops[0], no)?;
            let imm = parse_i16(ops[1], no, equs)?;
            b.push(Instruction::Lim { rd, imm });
        }
        "lui" => {
            want(ops, 2, no)?;
            let rd = parse_reg(ops[0], no)?;
            let imm = parse_u16(ops[1], no, equs)?;
            b.push(Instruction::Lui { rd, imm });
        }
        "ldw" => {
            want(ops, 2, no)?;
            let base = parse_reg(ops[0], no)?;
            let disp = parse_i16(ops[1], no, equs)?;
            b.push(Instruction::Load { base, disp });
        }
        "sta" => {
            want(ops, 2, no)?;
            let base = parse_reg(ops[0], no)?;
            let disp = parse_i16(ops[1], no, equs)?;
            b.push(Instruction::StoreAddr { base, disp });
        }
        "lbr" => {
            want(ops, 2, no)?;
            let br = parse_breg(ops[0], no)?;
            // Numeric operand = absolute byte address; otherwise a label.
            if ops[1].starts_with(|c: char| c.is_ascii_digit() || c == '-') {
                let addr = parse_int(ops[1], no, equs)? as u32;
                b.push(Instruction::Lbr {
                    br,
                    target_parcel: (addr / 2) as u16,
                });
            } else {
                b.lbr_label(br, ops[1]);
            }
        }
        "lbrr" => {
            want(ops, 2, no)?;
            let br = parse_breg(ops[0], no)?;
            let rs1 = parse_reg(ops[1], no)?;
            b.push(Instruction::LbrReg { br, rs1 });
        }
        _ => return Err(err(no, AsmErrorKind::UnknownMnemonic(mnemonic.into()))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Program {
        Assembler::new(InstrFormat::Fixed32)
            .assemble(src)
            .unwrap_or_else(|e| panic!("assembly failed: {e}"))
    }

    #[test]
    fn assembles_every_mnemonic() {
        let p = asm(r#"
            nop
            halt
            xchg
            add  r1, r2, r3
            sub  r1, r2, r3
            and  r1, r2, r3
            or   r7, r7, r7
            xor  r1, r2, r3
            sll  r1, r2, r3
            srl  r1, r2, r3
            sra  r1, r2, r3
            addi r1, r2, -5
            subi r1, r2, 5
            andi r1, r2, 0xff
            ori  r1, r2, 1
            xori r1, r2, 1
            slli r1, r2, 3
            srli r1, r2, 3
            srai r1, r2, 3
            lim  r1, -100
            lui  r1, 0xABCD
            ldw  r2, 16
            sta  r3, -16
            lbr  b0, 0x40
            lbrr b1, r4
            pbr  b0, r0, 0
            pbr.eqz b1, r1, 1
            pbr.nez b2, r2, 2
            pbr.gtz b3, r3, 3
            pbr.ltz b4, r4, 4
            pbr.never b5, r5, 5
        "#);
        assert_eq!(p.static_count(), 31);
    }

    #[test]
    fn labels_and_comments() {
        let p = asm("start: nop ; comment\n  lbr b0, start # another\n");
        assert_eq!(p.symbols()["start"], 0);
    }

    #[test]
    fn multiple_labels_one_line() {
        let p = asm("a: b: nop\n");
        assert_eq!(p.symbols()["a"], 0);
        assert_eq!(p.symbols()["b"], 0);
    }

    #[test]
    fn data_directive() {
        let p = asm(".data 0x1000, 7\nhalt\n");
        assert_eq!(p.data(), &[(0x1000, 7)]);
    }

    #[test]
    fn error_reports_line() {
        let e = Assembler::new(InstrFormat::Fixed32)
            .assemble("nop\nbogus r1\n")
            .unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(matches!(e.kind(), AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn bad_register_reported() {
        let e = Assembler::new(InstrFormat::Fixed32)
            .assemble("add r9, r1, r2\n")
            .unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::BadRegister(_)));
    }

    #[test]
    fn delay_out_of_range() {
        let e = Assembler::new(InstrFormat::Fixed32)
            .assemble("pbr b0, r0, 8\n")
            .unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::BadImmediate(_)));
    }

    #[test]
    fn undefined_label_surfaces_as_build_error() {
        let e = Assembler::new(InstrFormat::Fixed32)
            .assemble("lbr b0, missing\n")
            .unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::Build(_)));
    }

    #[test]
    fn equ_constants_substitute() {
        let p = asm(".equ FPU, -4096\n.equ COUNT, 5\nlim r5, FPU\nlim r1, COUNT\nhalt\n");
        let instrs: Vec<_> = p.instructions().map(|(_, i)| i).collect();
        assert_eq!(
            instrs[0],
            Instruction::Lim {
                rd: crate::Reg::new(5),
                imm: -4096
            }
        );
        assert_eq!(
            instrs[1],
            Instruction::Lim {
                rd: crate::Reg::new(1),
                imm: 5
            }
        );
    }

    #[test]
    fn align_pads_with_nops() {
        let p = asm("nop\n.align 16\nhere: halt\n");
        assert_eq!(p.symbols()["here"], 16);
        // Three nops inserted between the first nop and halt.
        assert_eq!(p.static_count(), 5);
    }

    #[test]
    fn pseudo_instructions_expand() {
        let p = asm("mov r1, r2\nli32 r3, 0x12345678\npush r1\npop r4\nhalt\n");
        let instrs: Vec<_> = p.instructions().map(|(_, i)| i).collect();
        assert_eq!(instrs.len(), 6, "li32 expands to two instructions");
        assert_eq!(
            instrs[1],
            Instruction::Lim {
                rd: crate::Reg::new(3),
                imm: 0x5678
            }
        );
        assert_eq!(
            instrs[2],
            Instruction::Lui {
                rd: crate::Reg::new(3),
                imm: 0x1234
            }
        );
        assert!(matches!(instrs[3], Instruction::Alu { rd, .. } if rd.is_queue()));
    }

    #[test]
    fn bad_align_reported() {
        let e = Assembler::new(InstrFormat::Fixed32)
            .assemble("nop\n.align 6\nhalt\n")
            .unwrap_err();
        assert!(matches!(e.kind(), AsmErrorKind::Build(_)));
    }

    #[test]
    fn hex_immediates_accept_u16_range() {
        let p = asm("lim r0, 0xFFFF\n");
        match p.instructions().next().unwrap().1 {
            Instruction::Lim { imm, .. } => assert_eq!(imm, -1),
            other => panic!("unexpected {other}"),
        }
    }
}
