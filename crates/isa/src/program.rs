//! Program images and the programmatic builder.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::decode::{decode, instr_len, DecodeError};
use crate::encode::encode;
use crate::format::InstrFormat;
use crate::instruction::Instruction;
use crate::reg::BranchReg;
use crate::PARCEL_BYTES;

/// An assembled program: a parcel image plus symbols and initial data.
///
/// Code addresses are byte addresses; instructions sit at even (parcel)
/// boundaries. The image is immutable and cheaply cloneable (the parcel
/// vector is shared), so fetch engines can keep their own handle.
#[derive(Debug, Clone)]
pub struct Program {
    parcels: Arc<Vec<u16>>,
    base: u32,
    entry: u32,
    format: InstrFormat,
    symbols: HashMap<String, u32>,
    data: Vec<(u32, u32)>,
}

impl Program {
    /// The raw parcel image.
    pub fn parcels(&self) -> &[u16] {
        &self.parcels
    }

    /// Base byte address of the image.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Entry point (byte address).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The instruction format the image was laid out with.
    pub fn format(&self) -> InstrFormat {
        self.format
    }

    /// Label → byte-address map.
    pub fn symbols(&self) -> &HashMap<String, u32> {
        &self.symbols
    }

    /// Initial data memory contents as `(byte address, value)` pairs.
    pub fn data(&self) -> &[(u32, u32)] {
        &self.data
    }

    /// Total code size in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.parcels.len() as u32 * PARCEL_BYTES
    }

    /// One past the last code byte address.
    pub fn end(&self) -> u32 {
        self.base + self.code_bytes()
    }

    /// Returns the parcel at byte address `addr`, or `None` outside the
    /// image. `addr` must be even.
    pub fn parcel_at(&self, addr: u32) -> Option<u16> {
        debug_assert_eq!(addr % PARCEL_BYTES, 0, "unaligned parcel address");
        if addr < self.base {
            return None;
        }
        let idx = ((addr - self.base) / PARCEL_BYTES) as usize;
        self.parcels.get(idx).copied()
    }

    /// Decodes the instruction at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for addresses outside the image or holding
    /// invalid encodings.
    pub fn instruction_at(&self, addr: u32) -> Result<(Instruction, u32), DecodeError> {
        let first = self.parcel_at(addr).ok_or(DecodeError::MissingImmediate)?;
        let len = instr_len(first);
        let second = if len == 2 {
            Some(
                self.parcel_at(addr + PARCEL_BYTES)
                    .ok_or(DecodeError::MissingImmediate)?,
            )
        } else {
            None
        };
        let instr = decode(first, second)?;
        Ok((instr, len as u32 * PARCEL_BYTES))
    }

    /// Iterates over `(byte address, instruction)` pairs from `base` to the
    /// end of the image, stopping at the first decode error.
    pub fn instructions(&self) -> InstructionIter<'_> {
        InstructionIter {
            program: self,
            addr: self.base,
        }
    }

    /// Counts the static instructions in the image.
    pub fn static_count(&self) -> usize {
        self.instructions().count()
    }

    /// A shared handle to the parcel image, for fetch engines.
    pub fn image(&self) -> Arc<Vec<u16>> {
        Arc::clone(&self.parcels)
    }

    /// Reassembles a program from raw parts (used by the binary loader in
    /// [`crate::binfmt`]).
    ///
    /// # Panics
    ///
    /// Panics if `base` or `entry` are not parcel-aligned.
    pub fn from_raw(
        parcels: Vec<u16>,
        base: u32,
        entry: u32,
        format: InstrFormat,
        symbols: HashMap<String, u32>,
        data: Vec<(u32, u32)>,
    ) -> Program {
        assert_eq!(base % PARCEL_BYTES, 0, "base must be parcel-aligned");
        assert_eq!(entry % PARCEL_BYTES, 0, "entry must be parcel-aligned");
        Program {
            parcels: Arc::new(parcels),
            base,
            entry,
            format,
            symbols,
            data,
        }
    }
}

/// Iterator over the instructions of a [`Program`].
#[derive(Debug)]
pub struct InstructionIter<'a> {
    program: &'a Program,
    addr: u32,
}

impl Iterator for InstructionIter<'_> {
    type Item = (u32, Instruction);

    fn next(&mut self) -> Option<Self::Item> {
        if self.addr >= self.program.end() {
            return None;
        }
        match self.program.instruction_at(self.addr) {
            Ok((instr, size)) => {
                let at = self.addr;
                self.addr += size;
                Some((at, instr))
            }
            Err(_) => None,
        }
    }
}

/// An error produced when building a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch-register load referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A label address does not fit in the 16-bit parcel-address field of
    /// `lbr`.
    LabelOutOfRange {
        /// The offending label.
        label: String,
        /// Its byte address.
        addr: u32,
    },
    /// An `.align` value was not a power of two, or the required padding
    /// is not a whole number of `nop`s under the chosen format.
    BadAlignment {
        /// The requested alignment.
        align: u32,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::LabelOutOfRange { label, addr } => {
                write!(f, "label `{label}` at {addr:#x} out of lbr range")
            }
            BuildError::BadAlignment { align } => {
                write!(f, "invalid alignment {align}")
            }
        }
    }
}

impl Error for BuildError {}

#[derive(Debug, Clone)]
enum Item {
    Instr(Instruction),
    /// `lbr` whose target is a label patched at build time.
    LbrLabel(BranchReg, String),
    /// Pad with `nop`s to the given byte alignment.
    Align(u32),
}

/// Incrementally builds a [`Program`] from instructions and labels.
///
/// ```
/// use pipe_isa::{AluOp, Instruction, InstrFormat, ProgramBuilder, Reg, BranchReg, Cond};
///
/// let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
/// b.push(Instruction::Lim { rd: Reg::new(1), imm: 3 });
/// b.lbr_label(BranchReg::new(0), "top");
/// b.label("top");
/// b.push(Instruction::AluImm { op: AluOp::Sub, rd: Reg::new(1), rs1: Reg::new(1), imm: 1 });
/// b.push(Instruction::Pbr { cond: Cond::Nez, br: BranchReg::new(0), rs: Reg::new(1), delay: 0 });
/// b.push(Instruction::Halt);
/// let program = b.build().unwrap();
/// assert_eq!(program.static_count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    format: InstrFormat,
    base: u32,
    items: Vec<Item>,
    /// label → item index at which it is defined
    labels: HashMap<String, usize>,
    data: Vec<(u32, u32)>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates a builder laying code out from byte address 0.
    pub fn new(format: InstrFormat) -> ProgramBuilder {
        ProgramBuilder::with_base(format, 0)
    }

    /// Creates a builder laying code out from `base` (must be even).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not parcel-aligned.
    pub fn with_base(format: InstrFormat, base: u32) -> ProgramBuilder {
        assert_eq!(base % PARCEL_BYTES, 0, "base must be parcel-aligned");
        ProgramBuilder {
            format,
            base,
            items: Vec::new(),
            labels: HashMap::new(),
            data: Vec::new(),
            duplicate: None,
        }
    }

    /// The layout format.
    pub fn format(&self) -> InstrFormat {
        self.format
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.items.push(Item::Instr(instr));
        self
    }

    /// Appends several instructions.
    pub fn extend<I: IntoIterator<Item = Instruction>>(&mut self, instrs: I) -> &mut Self {
        for i in instrs {
            self.push(i);
        }
        self
    }

    /// Appends an `lbr` whose target is the byte address of `label`,
    /// resolved at [`build`](Self::build) time.
    pub fn lbr_label(&mut self, br: BranchReg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::LbrLabel(br, label.into()));
        self
    }

    /// Pads with `nop`s until the current address is a multiple of
    /// `bytes` (which must be a power of two and a multiple of the `nop`
    /// size under the builder's format).
    pub fn align(&mut self, bytes: u32) -> &mut Self {
        self.items.push(Item::Align(bytes));
        self
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if self
            .labels
            .insert(label.clone(), self.items.len())
            .is_some()
            && self.duplicate.is_none()
        {
            self.duplicate = Some(label);
        }
        self
    }

    /// Sets an initial data word at byte address `addr`.
    pub fn data_word(&mut self, addr: u32, value: u32) -> &mut Self {
        self.data.push((addr, value));
        self
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves labels and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for undefined or duplicate labels and for
    /// label addresses outside `lbr`'s 16-bit parcel-address range.
    pub fn build(&self) -> Result<Program, BuildError> {
        if let Some(l) = &self.duplicate {
            return Err(BuildError::DuplicateLabel(l.clone()));
        }

        // Pass 1: compute the byte address of every item. `lbr` has a fixed
        // two-parcel size in both formats, so sizes don't depend on label
        // resolution; alignment padding depends only on the address.
        let nop_bytes = Instruction::Nop.size_bytes(self.format);
        let align_pad = |addr: u32, align: u32| -> Result<u32, BuildError> {
            if align == 0 || !align.is_power_of_two() {
                return Err(BuildError::BadAlignment { align });
            }
            let pad = (align - addr % align) % align;
            if !pad.is_multiple_of(nop_bytes) {
                return Err(BuildError::BadAlignment { align });
            }
            Ok(pad)
        };
        let mut addr = self.base;
        let mut item_addr = Vec::with_capacity(self.items.len() + 1);
        for item in &self.items {
            item_addr.push(addr);
            let size = match item {
                Item::Instr(i) => i.size_bytes(self.format),
                Item::LbrLabel(..) => 2 * PARCEL_BYTES,
                Item::Align(a) => align_pad(addr, *a)?,
            };
            addr += size;
        }
        item_addr.push(addr); // address of "end", for trailing labels

        let mut symbols = HashMap::new();
        for (label, idx) in &self.labels {
            symbols.insert(label.clone(), item_addr[*idx]);
        }

        // Pass 2: encode.
        let mut parcels = Vec::new();
        for (idx, item) in self.items.iter().enumerate() {
            let instr = match item {
                Item::Align(a) => {
                    let pad = align_pad(item_addr[idx], *a)?;
                    for _ in 0..pad / nop_bytes {
                        parcels.extend_from_slice(encode(&Instruction::Nop, self.format).parcels());
                    }
                    continue;
                }
                Item::Instr(i) => *i,
                Item::LbrLabel(br, label) => {
                    let target = *symbols
                        .get(label)
                        .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
                    let parcel_addr = target / PARCEL_BYTES;
                    let target_parcel =
                        u16::try_from(parcel_addr).map_err(|_| BuildError::LabelOutOfRange {
                            label: label.clone(),
                            addr: target,
                        })?;
                    Instruction::Lbr {
                        br: *br,
                        target_parcel,
                    }
                }
            };
            parcels.extend_from_slice(encode(&instr, self.format).parcels());
        }

        Ok(Program {
            parcels: Arc::new(parcels),
            base: self.base,
            entry: self.base,
            format: self.format,
            symbols,
            data: self.data.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{AluOp, Cond};
    use crate::reg::Reg;

    fn tiny_loop(format: InstrFormat) -> Program {
        let mut b = ProgramBuilder::new(format);
        b.push(Instruction::Lim {
            rd: Reg::new(1),
            imm: 3,
        });
        b.lbr_label(BranchReg::new(0), "top");
        b.label("top");
        b.push(Instruction::AluImm {
            op: AluOp::Sub,
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 1,
        });
        b.push(Instruction::Pbr {
            cond: Cond::Nez,
            br: BranchReg::new(0),
            rs: Reg::new(1),
            delay: 0,
        });
        b.push(Instruction::Halt);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_iterates() {
        let p = tiny_loop(InstrFormat::Fixed32);
        assert_eq!(p.static_count(), 5);
        assert_eq!(p.code_bytes(), 5 * 4);
        let instrs: Vec<_> = p.instructions().collect();
        assert_eq!(instrs[0].0, 0);
        assert_eq!(instrs[1].0, 4);
        assert!(matches!(instrs[4].1, Instruction::Halt));
    }

    #[test]
    fn mixed_layout_is_denser() {
        let fixed = tiny_loop(InstrFormat::Fixed32);
        let mixed = tiny_loop(InstrFormat::Mixed);
        assert!(mixed.code_bytes() < fixed.code_bytes());
        assert_eq!(mixed.static_count(), fixed.static_count());
    }

    #[test]
    fn label_resolution() {
        let p = tiny_loop(InstrFormat::Fixed32);
        let top = p.symbols()["top"];
        assert_eq!(top, 8); // after lim (4) and lbr (4)
        let (lbr, _) = p.instruction_at(4).unwrap();
        match lbr {
            Instruction::Lbr { target_parcel, .. } => {
                assert_eq!(u32::from(target_parcel) * 2, top)
            }
            other => panic!("expected lbr, got {other}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
        b.lbr_label(BranchReg::new(0), "nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
        b.label("x");
        b.push(Instruction::Nop);
        b.label("x");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn trailing_label_points_at_end() {
        let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
        b.push(Instruction::Nop);
        b.label("end");
        let p = b.build().unwrap();
        assert_eq!(p.symbols()["end"], 4);
    }

    #[test]
    fn parcel_at_bounds() {
        let p = tiny_loop(InstrFormat::Fixed32);
        assert!(p.parcel_at(0).is_some());
        assert!(p.parcel_at(p.end()).is_none());
    }

    #[test]
    fn base_offset_layout() {
        let mut b = ProgramBuilder::with_base(InstrFormat::Fixed32, 0x100);
        b.push(Instruction::Nop);
        b.label("here");
        let p = b.build().unwrap();
        assert_eq!(p.base(), 0x100);
        assert_eq!(p.symbols()["here"], 0x104);
        assert!(p.parcel_at(0x0).is_none());
        assert!(p.parcel_at(0x100).is_some());
    }

    #[test]
    fn data_words_recorded() {
        let mut b = ProgramBuilder::new(InstrFormat::Fixed32);
        b.push(Instruction::Halt);
        b.data_word(0x1000, 42);
        let p = b.build().unwrap();
        assert_eq!(p.data(), &[(0x1000, 42)]);
    }
}
