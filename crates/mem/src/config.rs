//! Memory subsystem configuration.

use std::fmt;

use crate::error::{require_at_least, require_multiple_of, ConfigError};

/// Which request class wins ties at the memory interface.
///
/// The paper's simulator "was also able to select whether data or
/// instructions have priority at the memory interface" (§5); all presented
/// results give instruction requests priority over data requests, which is
/// the default here. Demand requests always rank above instruction
/// prefetches, and floating-point results rank between loads/stores and
/// prefetches, exactly as described for the return bus in §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityPolicy {
    /// Demand instruction fetches beat data requests (paper default).
    #[default]
    InstructionFirst,
    /// Data requests beat demand instruction fetches.
    DataFirst,
}

impl fmt::Display for PriorityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityPolicy::InstructionFirst => f.write_str("instruction-first"),
            PriorityPolicy::DataFirst => f.write_str("data-first"),
        }
    }
}

/// Configuration of the external memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Cycles between accepting a request and its first response beat
    /// appearing on the input bus (the paper sweeps 1–6).
    pub access_cycles: u32,
    /// If `true`, the memory accepts a new request every cycle; otherwise
    /// it services one request at a time.
    pub pipelined: bool,
    /// Input (return) bus width in bytes delivered per cycle (4 or 8 in the
    /// paper).
    pub in_bus_bytes: u32,
    /// Output bus width in bytes per cycle. Requests (an address, plus
    /// store data) occupy the output bus for one cycle; the width is kept
    /// for documentation and future extension.
    pub out_bus_bytes: u32,
    /// Tie-breaking between instruction and data requests.
    pub priority: PriorityPolicy,
    /// Latency of a floating-point operation, in cycles (4 in the paper).
    pub fpu_latency: u32,
    /// Optional finite external cache (the paper assumes `None`: a 100 %
    /// hit rate). When set, a missing request pays the configured penalty
    /// before its access begins.
    pub external_cache: Option<crate::extcache::ExternalCacheConfig>,
    /// Optional on-chip data cache (the paper models none: every data
    /// access uses the shared memory port). When set, loads that hit are
    /// serviced on chip without arbitrating for the port.
    pub d_cache: Option<crate::dcache::DCacheConfig>,
}

impl MemConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first invalid field: zero access time, zero/odd bus
    /// widths, or an invalid external-cache geometry.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_at_least("access_cycles", u64::from(self.access_cycles), 1)?;
        require_multiple_of("in_bus_bytes", self.in_bus_bytes, 2)?;
        require_multiple_of("out_bus_bytes", self.out_bus_bytes, 2)?;
        if let Some(ec) = &self.external_cache {
            ec.validate()?;
        }
        if let Some(dc) = &self.d_cache {
            dc.validate()?;
        }
        Ok(())
    }

    /// Cycles needed to stream `bytes` over the input bus.
    pub fn beats_for(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.in_bus_bytes)
    }
}

impl Default for MemConfig {
    /// The paper's fast-memory baseline: 1-cycle access, non-pipelined,
    /// 4-byte buses, instruction priority, 4-cycle FPU.
    fn default() -> MemConfig {
        MemConfig {
            access_cycles: 1,
            pipelined: false,
            in_bus_bytes: 4,
            out_bus_bytes: 4,
            priority: PriorityPolicy::InstructionFirst,
            fpu_latency: 4,
            external_cache: None,
            d_cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_baseline() {
        let c = MemConfig::default();
        assert_eq!(c.access_cycles, 1);
        assert!(!c.pipelined);
        assert_eq!(c.in_bus_bytes, 4);
        assert_eq!(c.priority, PriorityPolicy::InstructionFirst);
        assert_eq!(c.fpu_latency, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let c = MemConfig {
            access_cycles: 0,
            ..MemConfig::default()
        };
        assert!(c.validate().is_err());

        let c = MemConfig {
            in_bus_bytes: 3,
            ..MemConfig::default()
        };
        assert!(c.validate().is_err());

        let c = MemConfig {
            out_bus_bytes: 0,
            ..MemConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn beats_round_up() {
        let c = MemConfig {
            in_bus_bytes: 8,
            ..MemConfig::default()
        };
        assert_eq!(c.beats_for(4), 1);
        assert_eq!(c.beats_for(8), 1);
        assert_eq!(c.beats_for(12), 2);
        assert_eq!(c.beats_for(32), 4);
    }
}
