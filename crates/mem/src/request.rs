//! Memory requests and response beats.

use std::fmt;

/// The class of a memory request, which determines its arbitration
/// priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqClass {
    /// A data load issued from the load address queue.
    DataLoad,
    /// A data store (address + value pair from the SAQ/SDQ heads). Stores
    /// to the FPU window trigger floating-point operations.
    DataStore,
    /// A demand instruction fetch — the processor is (or will shortly be)
    /// waiting on it.
    IFetch,
    /// A speculative instruction prefetch — lowest priority.
    IPrefetch,
}

impl ReqClass {
    /// All classes, for stats tables.
    pub const ALL: [ReqClass; 4] = [
        ReqClass::DataLoad,
        ReqClass::DataStore,
        ReqClass::IFetch,
        ReqClass::IPrefetch,
    ];

    /// Dense index for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            ReqClass::DataLoad => 0,
            ReqClass::DataStore => 1,
            ReqClass::IFetch => 2,
            ReqClass::IPrefetch => 3,
        }
    }

    /// Returns `true` for the instruction-side classes.
    pub fn is_instruction(self) -> bool {
        matches!(self, ReqClass::IFetch | ReqClass::IPrefetch)
    }
}

impl fmt::Display for ReqClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReqClass::DataLoad => "data-load",
            ReqClass::DataStore => "data-store",
            ReqClass::IFetch => "ifetch",
            ReqClass::IPrefetch => "iprefetch",
        };
        f.write_str(s)
    }
}

/// A request offered to the memory system for one cycle.
///
/// Clients re-offer a request each cycle until [`crate::TickOutput`]
/// reports its tag as accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Arbitration class.
    pub class: ReqClass,
    /// Starting byte address.
    pub addr: u32,
    /// Transfer size in bytes (4 for data and conventional instruction
    /// fetches; a cache line for PIPE line fetches).
    pub bytes: u32,
    /// Client-chosen identifier echoed in acceptances and beats. Allocate
    /// with [`crate::MemorySystem::new_tag`] to keep tags unique.
    pub tag: u64,
    /// For stores only: the 32-bit value to write.
    pub store_value: Option<u32>,
}

impl MemRequest {
    /// Builds a (data or instruction) read request.
    pub fn load(class: ReqClass, addr: u32, bytes: u32, tag: u64) -> MemRequest {
        debug_assert!(!matches!(class, ReqClass::DataStore));
        MemRequest {
            class,
            addr,
            bytes,
            tag,
            store_value: None,
        }
    }

    /// Builds a data store request.
    pub fn store(addr: u32, value: u32, tag: u64) -> MemRequest {
        MemRequest {
            class: ReqClass::DataStore,
            addr,
            bytes: 4,
            tag,
            store_value: Some(value),
        }
    }
}

/// The source of a response beat on the input bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeatSource {
    /// Response to a [`ReqClass::DataLoad`].
    DataLoad,
    /// A floating-point result pushed back by the FPU.
    FpuResult,
    /// Response to a demand instruction fetch.
    IFetch,
    /// Response to an instruction prefetch.
    IPrefetch,
}

/// One input-bus beat: up to `in_bus_bytes` of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Beat {
    /// Tag of the originating request (0 for FPU results, which are matched
    /// in FIFO order by the processor).
    pub tag: u64,
    /// What kind of response this beat belongs to.
    pub source: BeatSource,
    /// Byte address of the first byte in this beat.
    pub addr: u32,
    /// Bytes carried by this beat.
    pub bytes: u32,
    /// The 32-bit value, for data loads and FPU results.
    pub value: Option<u32>,
    /// `true` when this is the final beat of its response.
    pub last: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_dense_and_unique() {
        let mut seen = [false; 4];
        for c in ReqClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn instruction_classification() {
        assert!(ReqClass::IFetch.is_instruction());
        assert!(ReqClass::IPrefetch.is_instruction());
        assert!(!ReqClass::DataLoad.is_instruction());
        assert!(!ReqClass::DataStore.is_instruction());
    }

    #[test]
    fn constructors() {
        let r = MemRequest::load(ReqClass::IFetch, 0x40, 16, 7);
        assert_eq!(r.bytes, 16);
        assert_eq!(r.store_value, None);
        let s = MemRequest::store(0x100, 99, 8);
        assert_eq!(s.class, ReqClass::DataStore);
        assert_eq!(s.store_value, Some(99));
    }
}
