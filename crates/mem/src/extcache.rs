//! An optional finite external cache model.
//!
//! The paper assumes the off-chip cache is "large enough to achieve a
//! 100 % hit rate" (§5). This module lets that assumption be relaxed as an
//! extension study: a direct-mapped tag store in front of main memory;
//! a miss delays the request by a configurable penalty while the line is
//! brought in from main memory.

use std::fmt;

use crate::error::{require_at_most, require_power_of_two, ConfigError};

/// Geometry and timing of the finite external cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalCacheConfig {
    /// Capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two, ≤ size).
    pub line_bytes: u32,
    /// Extra cycles a missing request waits while its line comes from
    /// main memory.
    pub miss_penalty: u32,
}

impl ExternalCacheConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for non-power-of-two or inconsistent
    /// sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_power_of_two("external_cache.size_bytes", self.size_bytes)?;
        require_power_of_two("external_cache.line_bytes", self.line_bytes)?;
        require_at_most(
            "external_cache.line_bytes",
            self.line_bytes,
            "external_cache.size_bytes",
            self.size_bytes,
        )
    }
}

impl fmt::Display for ExternalCacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B external cache, {}B lines, +{} cycle miss penalty",
            self.size_bytes, self.line_bytes, self.miss_penalty
        )
    }
}

/// The external cache's tag store (direct-mapped, whole-line validity —
/// main-memory transfers fill complete lines).
#[derive(Debug, Clone)]
pub struct ExternalCache {
    cfg: ExternalCacheConfig,
    tags: Vec<Option<u32>>,
    hits: u64,
    misses: u64,
}

impl ExternalCache {
    /// Creates an empty external cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: ExternalCacheConfig) -> ExternalCache {
        if let Err(e) = cfg.validate() {
            panic!("invalid ExternalCacheConfig: {e}");
        }
        let lines = (cfg.size_bytes / cfg.line_bytes) as usize;
        ExternalCache {
            cfg,
            tags: vec![None; lines],
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ExternalCacheConfig {
        &self.cfg
    }

    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.cfg.line_bytes;
        let idx = (line as usize) % self.tags.len();
        (idx, addr / self.cfg.size_bytes)
    }

    /// Accesses the byte range `[addr, addr + bytes)`: returns the number
    /// of line misses incurred, filling the missing lines.
    pub fn access(&mut self, addr: u32, bytes: u32) -> u32 {
        let mut misses = 0;
        let mut a = addr & !(self.cfg.line_bytes - 1);
        let end = addr.saturating_add(bytes.max(1));
        while a < end {
            let (idx, tag) = self.index_and_tag(a);
            if self.tags[idx] == Some(tag) {
                self.hits += 1;
            } else {
                self.tags[idx] = Some(tag);
                self.misses += 1;
                misses += 1;
            }
            a = a.saturating_add(self.cfg.line_bytes);
            if a == 0 {
                break;
            }
        }
        misses
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u32, line: u32) -> ExternalCache {
        ExternalCache::new(ExternalCacheConfig {
            size_bytes: size,
            line_bytes: line,
            miss_penalty: 10,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = cache(1024, 64);
        assert_eq!(c.access(0x100, 4), 1);
        assert_eq!(c.access(0x104, 4), 0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = cache(128, 64); // two lines
        assert_eq!(c.access(0x000, 4), 1);
        assert_eq!(c.access(0x080, 4), 1); // maps to index 0, evicts
        assert_eq!(c.access(0x000, 4), 1); // miss again
    }

    #[test]
    fn spanning_access_counts_each_line() {
        let mut c = cache(1024, 64);
        assert_eq!(c.access(0x3C, 16), 2, "crosses a line boundary");
    }

    #[test]
    fn validation() {
        assert!(ExternalCacheConfig {
            size_bytes: 0,
            line_bytes: 64,
            miss_penalty: 1
        }
        .validate()
        .is_err());
        assert!(ExternalCacheConfig {
            size_bytes: 32,
            line_bytes: 64,
            miss_penalty: 1
        }
        .validate()
        .is_err());
        assert!(ExternalCacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            miss_penalty: 10
        }
        .validate()
        .is_ok());
    }
}
