//! Typed configuration-validation errors.
//!
//! Every `validate()` in the simulator's configuration types — memory,
//! caches, fetch engines, and the top-level simulation config — reports
//! problems through [`ConfigError`] instead of ad-hoc strings, so callers
//! can match on the failure kind and error sources compose through
//! `std::error::Error`.

use std::error::Error;
use std::fmt;

/// A structural problem in a configuration value.
///
/// `field` names are stable identifiers (the Rust field path, e.g.
/// `"iq_bytes"` or `"cache.line_bytes"`) suitable for programmatic
/// matching; the `Display` form is the user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `field` must be a nonzero power of two.
    NotPowerOfTwo {
        /// Offending field.
        field: &'static str,
        /// Value supplied.
        value: u32,
    },
    /// `field` must be a positive multiple of `multiple`.
    NotMultipleOf {
        /// Offending field.
        field: &'static str,
        /// Value supplied.
        value: u32,
        /// Required divisor.
        multiple: u32,
    },
    /// `field` must be at least `min`.
    TooSmall {
        /// Offending field.
        field: &'static str,
        /// Value supplied.
        value: u64,
        /// Smallest accepted value.
        min: u64,
    },
    /// `field` may not exceed `limit_field` (e.g. a line larger than its
    /// cache).
    Exceeds {
        /// Offending field.
        field: &'static str,
        /// Value supplied.
        value: u32,
        /// The field that bounds it.
        limit_field: &'static str,
        /// The bounding value.
        limit: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a nonzero power of two, got {value}")
            }
            ConfigError::NotMultipleOf {
                field,
                value,
                multiple,
            } => write!(
                f,
                "{field} must be a positive multiple of {multiple}, got {value}"
            ),
            ConfigError::TooSmall { field, value, min } => {
                write!(f, "{field} must be at least {min}, got {value}")
            }
            ConfigError::Exceeds {
                field,
                value,
                limit_field,
                limit,
            } => write!(
                f,
                "{field} ({value}) may not exceed {limit_field} ({limit})"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Checks that `value` is a nonzero power of two.
///
/// # Errors
///
/// Returns [`ConfigError::NotPowerOfTwo`] otherwise.
pub fn require_power_of_two(field: &'static str, value: u32) -> Result<(), ConfigError> {
    if value == 0 || !value.is_power_of_two() {
        return Err(ConfigError::NotPowerOfTwo { field, value });
    }
    Ok(())
}

/// Checks that `value` is a positive multiple of `multiple`.
///
/// # Errors
///
/// Returns [`ConfigError::NotMultipleOf`] otherwise.
pub fn require_multiple_of(
    field: &'static str,
    value: u32,
    multiple: u32,
) -> Result<(), ConfigError> {
    if value == 0 || !value.is_multiple_of(multiple) {
        return Err(ConfigError::NotMultipleOf {
            field,
            value,
            multiple,
        });
    }
    Ok(())
}

/// Checks that `value >= min`.
///
/// # Errors
///
/// Returns [`ConfigError::TooSmall`] otherwise.
pub fn require_at_least(field: &'static str, value: u64, min: u64) -> Result<(), ConfigError> {
    if value < min {
        return Err(ConfigError::TooSmall { field, value, min });
    }
    Ok(())
}

/// Checks that `value <= limit`.
///
/// # Errors
///
/// Returns [`ConfigError::Exceeds`] otherwise.
pub fn require_at_most(
    field: &'static str,
    value: u32,
    limit_field: &'static str,
    limit: u32,
) -> Result<(), ConfigError> {
    if value > limit {
        return Err(ConfigError::Exceeds {
            field,
            value,
            limit_field,
            limit,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(
            require_power_of_two("size_bytes", 12)
                .unwrap_err()
                .to_string(),
            "size_bytes must be a nonzero power of two, got 12"
        );
        assert_eq!(
            require_multiple_of("iq_bytes", 3, 2)
                .unwrap_err()
                .to_string(),
            "iq_bytes must be a positive multiple of 2, got 3"
        );
        assert_eq!(
            require_at_least("access_cycles", 0, 1)
                .unwrap_err()
                .to_string(),
            "access_cycles must be at least 1, got 0"
        );
        assert_eq!(
            require_at_most("line_bytes", 32, "size_bytes", 16)
                .unwrap_err()
                .to_string(),
            "line_bytes (32) may not exceed size_bytes (16)"
        );
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(require_at_least("x", 0, 1).unwrap_err());
        assert!(e.to_string().contains("at least"));
    }

    #[test]
    fn helpers_accept_valid_values() {
        assert!(require_power_of_two("f", 64).is_ok());
        assert!(require_multiple_of("f", 8, 2).is_ok());
        assert!(require_at_least("f", 5, 1).is_ok());
        assert!(require_at_most("f", 16, "g", 16).is_ok());
    }
}
