//! Memory subsystem statistics.

use std::fmt;

use crate::request::ReqClass;

/// Counters accumulated by the memory system over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Requests accepted, by class (indexed with [`ReqClass::index`]).
    pub accepted: [u64; 4],
    /// Bytes transferred on the input bus, by beat source: data loads,
    /// FPU results, demand fetches, prefetches.
    pub in_bus_bytes: u64,
    /// Cycles the input bus carried at least one beat.
    pub in_bus_busy_cycles: u64,
    /// Cycles the output bus carried a request.
    pub out_bus_busy_cycles: u64,
    /// Cycles on which more than one class offered a request (contention).
    pub contended_cycles: u64,
    /// Cycles a non-pipelined memory refused offers because it was busy.
    pub blocked_cycles: u64,
    /// FPU operations started.
    pub fpu_ops: u64,
    /// Total cycles ticked.
    pub cycles: u64,
    /// Data loads serviced by the on-chip D-cache (never reached the
    /// shared memory port). Zero when no D-cache is configured.
    pub d_hits: u64,
    /// Data loads that missed the D-cache and went to the port.
    pub d_misses: u64,
    /// Write-through stores whose line was present in the D-cache.
    pub d_store_hits: u64,
}

impl MemStats {
    /// Requests accepted for `class`.
    pub fn accepted_for(&self, class: ReqClass) -> u64 {
        self.accepted[class.index()]
    }

    /// Total requests accepted across all classes.
    pub fn total_accepted(&self) -> u64 {
        self.accepted.iter().sum()
    }

    /// Fraction of cycles the input bus was busy, `0.0..=1.0`.
    pub fn in_bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.in_bus_busy_cycles as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "memory statistics over {} cycles:", self.cycles)?;
        for class in ReqClass::ALL {
            writeln!(f, "  {class:<12} accepted: {}", self.accepted_for(class))?;
        }
        writeln!(f, "  fpu ops:       {}", self.fpu_ops)?;
        writeln!(f, "  in-bus bytes:  {}", self.in_bus_bytes)?;
        writeln!(
            f,
            "  in-bus util:   {:.1}%",
            self.in_bus_utilization() * 100.0
        )?;
        writeln!(f, "  contended:     {} cycles", self.contended_cycles)?;
        write!(f, "  blocked:       {} cycles", self.blocked_cycles)?;
        if self.d_hits + self.d_misses + self.d_store_hits > 0 {
            write!(
                f,
                "\n  d-cache:       {} hits, {} misses, {} store hits",
                self.d_hits, self.d_misses, self.d_store_hits
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_handles_zero_cycles() {
        assert_eq!(MemStats::default().in_bus_utilization(), 0.0);
    }

    #[test]
    fn totals() {
        let mut s = MemStats::default();
        s.accepted[ReqClass::DataLoad.index()] = 3;
        s.accepted[ReqClass::IFetch.index()] = 2;
        assert_eq!(s.total_accepted(), 5);
        assert_eq!(s.accepted_for(ReqClass::DataLoad), 3);
    }

    #[test]
    fn display_nonempty() {
        assert!(!MemStats::default().to_string().is_empty());
    }
}
