//! The memory-mapped external floating-point unit.
//!
//! The PIPE chip has no floating-point or multiply hardware; the paper
//! attaches an off-chip FPU addressed as memory: "a pair of data stores to
//! the appropriate locations will cause a multiply to occur", with the
//! multiply taking a constant 4 clock cycles (§5). Results return over the
//! shared input bus with priority below loads/stores and above instruction
//! prefetches.
//!
//! Address map (see the `FPU_*` constants in `pipe-isa` for the canonical
//! values used by generated code):
//!
//! | offset | store effect                      |
//! |-------:|-----------------------------------|
//! | +0     | latch operand A                   |
//! | +4     | operand B, start multiply          |
//! | +8     | operand B, start add               |
//! | +12    | operand B, start subtract          |
//! | +16    | operand B, start divide            |

use std::collections::VecDeque;

/// A floating-point operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `a * b`
    Mul,
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a / b`
    Div,
}

impl FpOp {
    /// Decodes the operation selected by a store at byte offset `off` into
    /// the FPU window. Offset 0 is the operand-A latch, not an operation.
    pub fn from_offset(off: u32) -> Option<FpOp> {
        match off {
            4 => Some(FpOp::Mul),
            8 => Some(FpOp::Add),
            12 => Some(FpOp::Sub),
            16 => Some(FpOp::Div),
            _ => None,
        }
    }

    /// Evaluates the operation on IEEE-754 single-precision bit patterns.
    pub fn eval_bits(self, a: u32, b: u32) -> u32 {
        let (a, b) = (f32::from_bits(a), f32::from_bits(b));
        let r = match self {
            FpOp::Mul => a * b,
            FpOp::Add => a + b,
            FpOp::Sub => a - b,
            FpOp::Div => a / b,
        };
        r.to_bits()
    }
}

/// A completed FP operation waiting to return over the input bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpuResult {
    /// Cycle at which the result becomes available for bus arbitration.
    pub ready_at: u64,
    /// The 32-bit result bit pattern.
    pub value: u32,
}

/// The external FPU's architectural state.
#[derive(Debug, Clone, Default)]
pub struct Fpu {
    base: u32,
    latency: u32,
    operand_a: u32,
    results: VecDeque<FpuResult>,
    ops_started: u64,
}

impl Fpu {
    /// Creates an FPU mapped at byte address `base` with the given
    /// operation latency in cycles.
    pub fn new(base: u32, latency: u32) -> Fpu {
        Fpu {
            base,
            latency,
            operand_a: 0,
            results: VecDeque::new(),
            ops_started: 0,
        }
    }

    /// Returns `true` if `addr` falls inside this FPU's window.
    pub fn owns(&self, addr: u32) -> bool {
        (self.base..self.base + 0x20).contains(&addr)
    }

    /// Applies a store to the FPU window at cycle `now`.
    ///
    /// A store at offset 0 latches operand A; a store at an operation
    /// offset starts that operation, completing `latency` cycles later.
    /// Stores at unmapped offsets inside the window are ignored.
    pub fn store(&mut self, addr: u32, value: u32, now: u64) {
        debug_assert!(self.owns(addr));
        let off = addr - self.base;
        if off == 0 {
            self.operand_a = value;
        } else if let Some(op) = FpOp::from_offset(off) {
            let result = op.eval_bits(self.operand_a, value);
            self.results.push_back(FpuResult {
                ready_at: now + u64::from(self.latency),
                value: result,
            });
            self.ops_started += 1;
        }
    }

    /// Takes the oldest result that is ready at cycle `now`, if any.
    /// Results return strictly in operation order.
    pub fn take_ready(&mut self, now: u64) -> Option<u32> {
        match self.results.front() {
            Some(r) if r.ready_at <= now => self.results.pop_front().map(|r| r.value),
            _ => None,
        }
    }

    /// Peeks whether a result is ready at cycle `now` without taking it.
    pub fn has_ready(&self, now: u64) -> bool {
        matches!(self.results.front(), Some(r) if r.ready_at <= now)
    }

    /// Cycle at which the oldest in-flight result becomes available for
    /// bus arbitration, if any. Results return strictly in operation
    /// order, so this is the FPU's next bus-delivery event.
    pub fn next_ready_at(&self) -> Option<u64> {
        self.results.front().map(|r| r.ready_at)
    }

    /// Number of operations started over the FPU's lifetime.
    pub fn ops_started(&self) -> u64 {
        self.ops_started
    }

    /// Number of results still in flight or waiting for the bus.
    pub fn pending(&self) -> usize {
        self.results.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fpu() -> Fpu {
        Fpu::new(0xFFFF_F000, 4)
    }

    #[test]
    fn op_decoding() {
        assert_eq!(FpOp::from_offset(0), None);
        assert_eq!(FpOp::from_offset(4), Some(FpOp::Mul));
        assert_eq!(FpOp::from_offset(8), Some(FpOp::Add));
        assert_eq!(FpOp::from_offset(12), Some(FpOp::Sub));
        assert_eq!(FpOp::from_offset(16), Some(FpOp::Div));
        assert_eq!(FpOp::from_offset(20), None);
    }

    #[test]
    fn multiply_latency() {
        let mut f = fpu();
        f.store(0xFFFF_F000, 2.0f32.to_bits(), 10);
        f.store(0xFFFF_F004, 3.0f32.to_bits(), 10);
        assert_eq!(f.pending(), 1);
        assert!(!f.has_ready(13));
        assert!(f.has_ready(14));
        assert_eq!(f.take_ready(14), Some(6.0f32.to_bits()));
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn results_return_in_order() {
        let mut f = fpu();
        f.store(0xFFFF_F000, 1.0f32.to_bits(), 0);
        f.store(0xFFFF_F008, 2.0f32.to_bits(), 0); // 1+2 ready at 4
        f.store(0xFFFF_F000, 10.0f32.to_bits(), 1);
        f.store(0xFFFF_F00C, 4.0f32.to_bits(), 1); // 10-4 ready at 5
        assert_eq!(f.take_ready(10), Some(3.0f32.to_bits()));
        assert_eq!(f.take_ready(10), Some(6.0f32.to_bits()));
        assert_eq!(f.take_ready(10), None);
        assert_eq!(f.ops_started(), 2);
    }

    #[test]
    fn operand_a_persists_across_ops() {
        let mut f = fpu();
        f.store(0xFFFF_F000, 5.0f32.to_bits(), 0);
        f.store(0xFFFF_F004, 2.0f32.to_bits(), 0);
        f.store(0xFFFF_F004, 3.0f32.to_bits(), 1); // A still 5.0
        assert_eq!(f.take_ready(5), Some(10.0f32.to_bits()));
        assert_eq!(f.take_ready(5), Some(15.0f32.to_bits()));
    }

    #[test]
    fn division() {
        let mut f = fpu();
        f.store(0xFFFF_F000, 9.0f32.to_bits(), 0);
        f.store(0xFFFF_F010, 2.0f32.to_bits(), 0);
        assert_eq!(f.take_ready(4), Some(4.5f32.to_bits()));
    }

    #[test]
    fn window_ownership() {
        let f = fpu();
        assert!(f.owns(0xFFFF_F000));
        assert!(f.owns(0xFFFF_F01F));
        assert!(!f.owns(0xFFFF_F020));
        assert!(!f.owns(0x1000));
    }
}
