//! The cycle-stepped memory system: arbitration, access timing, and
//! input-bus streaming.
//!
//! ## Timing contract
//!
//! * A client *offers* at most one request per [`ReqClass`] per cycle with
//!   [`MemorySystem::offer`], then calls [`MemorySystem::tick`]. Offers not
//!   accepted that cycle are dropped — re-offer until the tag appears in
//!   [`TickOutput::accepted`].
//! * A request accepted at cycle *t* delivers its first beat at cycle
//!   *t + access_cycles*, then one beat per cycle of `in_bus_bytes` until
//!   done. Within a tick, delivery happens before acceptance, so a
//!   non-pipelined memory can accept a new request on the same cycle its
//!   previous response finishes.
//! * A non-pipelined memory holds one request at a time (a store occupies
//!   it for `access_cycles`); a pipelined memory accepts one new request
//!   every cycle and returns read responses in acceptance order.
//! * FPU results share the input bus, ranking below demand loads/stores
//!   and above prefetches (paper §5), and do not occupy the memory array.

use std::collections::VecDeque;

use crate::config::{MemConfig, PriorityPolicy};
use crate::data::DataMemory;
use crate::dcache::DCache;
use crate::extcache::ExternalCache;
use crate::fpu::Fpu;
use crate::request::{Beat, BeatSource, MemRequest, ReqClass};
use crate::stats::MemStats;

/// Default base address of the memory-mapped FPU window (matches
/// `pipe_isa::FPU_BASE`).
pub const FPU_BASE: u32 = 0xFFFF_F000;

/// What [`MemorySystem::tick`] produced this cycle.
///
/// Arbitration accepts at most one request and the input bus delivers at
/// most one beat per cycle, so both outputs are inline `Option`s — the
/// hot loop moves two small values per tick instead of allocating
/// per-cycle `Vec`s. (`Option` is `IntoIterator`, so `for tag in
/// out.accepted` still iterates zero-or-one times.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutput {
    /// Tag of the request accepted this cycle, if any.
    pub accepted: Option<u64>,
    /// Input-bus beat delivered this cycle, if any.
    pub beats: Option<Beat>,
    /// Tag of a data load serviced by the on-chip D-cache this cycle, if
    /// any — the hit neither arbitrates for nor occupies the memory port,
    /// so it can coincide with a port acceptance.
    pub d_accepted: Option<u64>,
    /// D-cache hit value delivered this cycle (one cycle after its
    /// acceptance), bypassing the input bus.
    pub d_beat: Option<Beat>,
}

#[derive(Debug, Clone)]
struct Inflight {
    req: MemRequest,
    first_beat_at: u64,
}

#[derive(Debug, Clone)]
struct Streaming {
    source: BeatSource,
    tag: u64,
    next_addr: u32,
    remaining: u32,
}

/// A D-cache hit awaiting its one-cycle on-chip delivery.
#[derive(Debug, Clone, Copy)]
struct DPending {
    ready_at: u64,
    tag: u64,
    addr: u32,
}

/// The external cache, buses, arbitration and FPU, stepped one cycle at a
/// time. See the [module docs](self) for the timing contract.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    cycle: u64,
    data: DataMemory,
    fpu: Fpu,
    ext_cache: Option<ExternalCache>,
    d_cache: Option<DCache>,
    d_pending: VecDeque<DPending>,
    ports: [Option<MemRequest>; 4],
    inflight: VecDeque<Inflight>,
    streaming: Option<Streaming>,
    store_busy_until: u64,
    next_tag: u64,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates a memory system with an empty data image.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MemConfig::validate`].
    pub fn new(cfg: MemConfig) -> MemorySystem {
        if let Err(e) = cfg.validate() {
            panic!("invalid MemConfig: {e}");
        }
        let fpu = Fpu::new(FPU_BASE, cfg.fpu_latency);
        let ext_cache = cfg.external_cache.map(ExternalCache::new);
        let d_cache = cfg.d_cache.map(DCache::new);
        MemorySystem {
            cfg,
            cycle: 0,
            data: DataMemory::new(),
            fpu,
            ext_cache,
            d_cache,
            d_pending: VecDeque::new(),
            ports: [None, None, None, None],
            inflight: VecDeque::new(),
            streaming: None,
            store_busy_until: 0,
            next_tag: 1,
            stats: MemStats::default(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Current cycle number (cycles completed so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Allocates a fresh request tag.
    pub fn new_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Read access to the data image.
    pub fn data(&self) -> &DataMemory {
        &self.data
    }

    /// Mutable access to the data image (for pre-run initialisation).
    pub fn data_mut(&mut self) -> &mut DataMemory {
        &mut self.data
    }

    /// Read access to the FPU state.
    pub fn fpu(&self) -> &Fpu {
        &self.fpu
    }

    /// Read access to the finite external cache, when modeled.
    pub fn external_cache(&self) -> Option<&ExternalCache> {
        self.ext_cache.as_ref()
    }

    /// Read access to the on-chip data cache, when modeled.
    pub fn d_cache(&self) -> Option<&DCache> {
        self.d_cache.as_ref()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Returns `true` when no request is in flight, streaming, or occupying
    /// the memory array, and the FPU has no pending results — i.e. the
    /// memory side is fully drained.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
            && self.streaming.is_none()
            && self.d_pending.is_empty()
            && self.cycle >= self.store_busy_until
            && self.fpu.pending() == 0
    }

    /// Offers a request for arbitration this cycle, replacing any earlier
    /// offer of the same class. Offers expire at the end of the tick.
    pub fn offer(&mut self, req: MemRequest) {
        self.ports[req.class.index()] = Some(req);
    }

    /// Withdraws this cycle's offer for `class`, if any.
    pub fn withdraw(&mut self, class: ReqClass) {
        self.ports[class.index()] = None;
    }

    fn acceptance_order(&self) -> [ReqClass; 4] {
        match self.cfg.priority {
            PriorityPolicy::InstructionFirst => [
                ReqClass::IFetch,
                ReqClass::DataLoad,
                ReqClass::DataStore,
                ReqClass::IPrefetch,
            ],
            PriorityPolicy::DataFirst => [
                ReqClass::DataLoad,
                ReqClass::DataStore,
                ReqClass::IFetch,
                ReqClass::IPrefetch,
            ],
        }
    }

    /// Delivery rank: lower is served first. FPU results sit between
    /// demand traffic and prefetches.
    fn delivery_rank(&self, source: BeatSource) -> u32 {
        match (self.cfg.priority, source) {
            (PriorityPolicy::InstructionFirst, BeatSource::IFetch) => 0,
            (PriorityPolicy::InstructionFirst, BeatSource::DataLoad) => 1,
            (PriorityPolicy::DataFirst, BeatSource::DataLoad) => 0,
            (PriorityPolicy::DataFirst, BeatSource::IFetch) => 1,
            (_, BeatSource::FpuResult) => 2,
            (_, BeatSource::IPrefetch) => 3,
        }
    }

    fn source_for(class: ReqClass) -> BeatSource {
        match class {
            ReqClass::DataLoad => BeatSource::DataLoad,
            ReqClass::IFetch => BeatSource::IFetch,
            ReqClass::IPrefetch => BeatSource::IPrefetch,
            ReqClass::DataStore => unreachable!("stores produce no beats"),
        }
    }

    /// Number of upcoming cycles over which [`tick`](Self::tick) would be
    /// an exact no-op apart from the per-cycle arbitration counters: no
    /// beat delivered, no request accepted, no internal state advanced.
    ///
    /// `offers_pending` says whether the client would re-offer the same
    /// request(s) every one of those cycles; a cycle on which such an
    /// offer could be *accepted* ends the window. Returns 0 whenever the
    /// next tick would do real work. The window is unbounded (`u64::MAX`)
    /// when nothing is in flight and nothing is offered — the caller
    /// clamps against its own timeout horizon.
    ///
    /// Used by the batched simulation kernel to fast-forward stalled
    /// lanes; [`skip_quiet`](Self::skip_quiet) applies the window with the
    /// exact statistics ticking those cycles would have accumulated.
    pub fn quiet_cycles(&self, offers_pending: bool) -> u64 {
        if self.streaming.is_some() {
            return 0; // a beat goes out this very cycle
        }
        // With a D-cache, a standing data-load offer may be intercepted as
        // a hit on any cycle (even while the port is busy), and a pending
        // hit delivers next cycle — be conservative and never open a
        // window while either is possible.
        if self.d_cache.is_some() && (offers_pending || !self.d_pending.is_empty()) {
            return 0;
        }
        let mut wake = u64::MAX;
        if let Some(f) = self.inflight.front() {
            wake = wake.min(f.first_beat_at.max(self.cycle));
        }
        if let Some(at) = self.fpu.next_ready_at() {
            wake = wake.min(at.max(self.cycle));
        }
        if self.store_busy_until > self.cycle {
            // `is_idle` flips when the store completes, even with nothing
            // else in flight — the window must not hide that transition.
            wake = wake.min(self.store_busy_until);
        }
        if offers_pending {
            let accept_at = if self.cfg.pipelined {
                // A pipelined memory accepts every cycle.
                self.cycle
            } else if self.inflight.is_empty() {
                // Only the store-busy window delays acceptance.
                self.store_busy_until.max(self.cycle)
            } else {
                // Blocked until the in-flight response delivers — its
                // first beat (counted above) ends the window anyway.
                u64::MAX
            };
            wake = wake.min(accept_at);
        }
        wake.saturating_sub(self.cycle)
    }

    /// Skips `n` cycles previously validated by
    /// [`quiet_cycles`](Self::quiet_cycles), accumulating the same
    /// statistics as `n` individual ticks with `offered` requests on the
    /// ports each cycle: quiet cycles with offers are blocked cycles, and
    /// more than one standing offer contends every cycle.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the window is actually quiet.
    pub fn skip_quiet(&mut self, n: u64, offered: usize) {
        debug_assert!(
            n <= self.quiet_cycles(offered > 0),
            "skip_quiet past the quiet window"
        );
        if offered > 1 {
            self.stats.contended_cycles += n;
        }
        if offered > 0 {
            self.stats.blocked_cycles += n;
        }
        self.cycle += n;
        self.stats.cycles = self.cycle;
    }

    /// Advances one cycle. See the module docs for the timing contract.
    pub fn tick(&mut self) -> TickOutput {
        let now = self.cycle;
        let mut out = TickOutput::default();

        // --- D-cache hit delivery (on chip, off the input bus) ---
        if self.d_pending.front().is_some_and(|p| p.ready_at <= now) {
            let p = self.d_pending.pop_front().expect("front exists");
            out.d_beat = Some(Beat {
                tag: p.tag,
                source: BeatSource::DataLoad,
                addr: p.addr,
                bytes: 4,
                value: Some(self.data.read(p.addr)),
                last: true,
            });
        }

        // --- Delivery (input bus) ---
        if self.streaming.is_none() {
            // Choose between the oldest eligible memory response and a
            // ready FPU result.
            let front_eligible = self
                .inflight
                .front()
                .is_some_and(|f| f.first_beat_at <= now);
            let fpu_ready = self.fpu.has_ready(now);
            let pick_fpu = if fpu_ready && front_eligible {
                let front_src = Self::source_for(self.inflight[0].req.class);
                self.delivery_rank(BeatSource::FpuResult) < self.delivery_rank(front_src)
            } else {
                fpu_ready
            };
            if pick_fpu {
                let value = self.fpu.take_ready(now).expect("fpu result ready");
                self.streaming = Some(Streaming {
                    source: BeatSource::FpuResult,
                    tag: 0,
                    next_addr: value, // carries the value; see beat emission
                    remaining: 4,
                });
            } else if front_eligible {
                let f = self.inflight.pop_front().expect("front exists");
                self.streaming = Some(Streaming {
                    source: Self::source_for(f.req.class),
                    tag: f.req.tag,
                    next_addr: f.req.addr,
                    remaining: f.req.bytes,
                });
            }
        }
        if let Some(s) = &mut self.streaming {
            let bytes = s.remaining.min(self.cfg.in_bus_bytes);
            let last = bytes == s.remaining;
            let beat = match s.source {
                BeatSource::FpuResult => Beat {
                    tag: 0,
                    source: BeatSource::FpuResult,
                    addr: 0,
                    bytes,
                    value: Some(s.next_addr),
                    last,
                },
                BeatSource::DataLoad => Beat {
                    tag: s.tag,
                    source: BeatSource::DataLoad,
                    addr: s.next_addr,
                    bytes,
                    value: Some(self.data.read(s.next_addr)),
                    last,
                },
                src @ (BeatSource::IFetch | BeatSource::IPrefetch) => Beat {
                    tag: s.tag,
                    source: src,
                    addr: s.next_addr,
                    bytes,
                    value: None,
                    last,
                },
            };
            s.next_addr = s.next_addr.wrapping_add(bytes);
            s.remaining -= bytes;
            if s.remaining == 0 {
                self.streaming = None;
            }
            self.stats.in_bus_busy_cycles += 1;
            self.stats.in_bus_bytes += u64::from(bytes);
            out.beats = Some(beat);
        }

        // --- D-cache hit interception ---
        // A load that hits the on-chip D-cache is serviced without
        // touching the shared memory port: it neither contends with nor
        // blocks behind instruction fetch, and its value returns next
        // cycle regardless of what the buses are doing.
        if let Some(dc) = &mut self.d_cache {
            if let Some(req) = self.ports[ReqClass::DataLoad.index()] {
                if !self.fpu.owns(req.addr) && dc.lookup(req.addr) {
                    self.ports[ReqClass::DataLoad.index()] = None;
                    out.d_accepted = Some(req.tag);
                    self.d_pending.push_back(DPending {
                        ready_at: now + 1,
                        tag: req.tag,
                        addr: req.addr,
                    });
                }
            }
        }

        // --- Acceptance (output bus) ---
        // With nothing offered the whole section (and the port reset — all
        // ports are already `None`) is a no-op; skip it on this hot path.
        let offered = self.ports.iter().flatten().count();
        if offered > 0 {
            if offered > 1 {
                self.stats.contended_cycles += 1;
            }
            let memory_streaming = self
                .streaming
                .as_ref()
                .is_some_and(|s| s.source != BeatSource::FpuResult);
            let can_accept = if self.cfg.pipelined {
                true
            } else {
                self.inflight.is_empty() && !memory_streaming && now >= self.store_busy_until
            };
            if can_accept {
                for class in self.acceptance_order() {
                    if let Some(req) = self.ports[class.index()].take() {
                        self.stats.accepted[class.index()] += 1;
                        self.stats.out_bus_busy_cycles += 1;
                        out.accepted = Some(req.tag);
                        // Finite-external-cache extension: a miss delays the
                        // access while the line comes from main memory. FPU
                        // traffic bypasses the external cache.
                        let mut penalty = 0u64;
                        if !self.fpu.owns(req.addr) {
                            if let Some(ec) = &mut self.ext_cache {
                                let misses = ec.access(req.addr, req.bytes);
                                penalty = u64::from(misses) * u64::from(ec.config().miss_penalty);
                            }
                            if let Some(dc) = &mut self.d_cache {
                                match class {
                                    // A load reaching the port missed the
                                    // D-cache (hits were intercepted above):
                                    // charge the miss and allocate the line.
                                    ReqClass::DataLoad => dc.fill(req.addr),
                                    // Write-through, no-write-allocate.
                                    ReqClass::DataStore => {
                                        dc.store_probe(req.addr);
                                    }
                                    _ => {}
                                }
                            }
                        }
                        match class {
                            ReqClass::DataStore => {
                                let value = req.store_value.unwrap_or(0);
                                if self.fpu.owns(req.addr) {
                                    self.fpu.store(req.addr, value, now);
                                } else {
                                    self.data.write(req.addr, value);
                                }
                                if !self.cfg.pipelined {
                                    self.store_busy_until =
                                        now + u64::from(self.cfg.access_cycles) + penalty;
                                }
                            }
                            _ => {
                                self.inflight.push_back(Inflight {
                                    req,
                                    first_beat_at: now
                                        + u64::from(self.cfg.access_cycles)
                                        + penalty,
                                });
                            }
                        }
                        break;
                    }
                }
            } else {
                self.stats.blocked_cycles += 1;
            }

            // Offers expire.
            self.ports = [None, None, None, None];
        }

        self.stats.fpu_ops = self.fpu.ops_started();
        if let Some(dc) = &self.d_cache {
            self.stats.d_hits = dc.hits();
            self.stats.d_misses = dc.misses();
            self.stats.d_store_hits = dc.store_hits();
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(access: u32, pipelined: bool, in_bus: u32) -> MemConfig {
        MemConfig {
            access_cycles: access,
            pipelined,
            in_bus_bytes: in_bus,
            ..MemConfig::default()
        }
    }

    /// Drives `mem` while re-offering `req` until accepted; returns the
    /// acceptance cycle.
    fn drive_until_accepted(mem: &mut MemorySystem, req: MemRequest) -> u64 {
        for _ in 0..1000 {
            let at = mem.cycle();
            mem.offer(req);
            let out = mem.tick();
            if out.accepted == Some(req.tag) {
                return at;
            }
        }
        panic!("request never accepted");
    }

    /// Ticks until the final beat for `tag` arrives; returns (cycle, beats).
    fn drain_tag(mem: &mut MemorySystem, tag: u64) -> (u64, Vec<Beat>) {
        let mut beats = Vec::new();
        for _ in 0..1000 {
            let at = mem.cycle();
            let out = mem.tick();
            if let Some(b) = out.beats {
                if b.tag == tag {
                    let last = b.last;
                    beats.push(b);
                    if last {
                        return (at, beats);
                    }
                }
            }
        }
        panic!("response never completed");
    }

    #[test]
    fn load_latency_matches_access_time() {
        for access in [1, 2, 3, 6] {
            let mut mem = MemorySystem::new(cfg(access, false, 4));
            mem.data_mut().write(0x100, 77);
            let tag = mem.new_tag();
            let t0 = drive_until_accepted(
                &mut mem,
                MemRequest::load(ReqClass::DataLoad, 0x100, 4, tag),
            );
            let (t1, beats) = drain_tag(&mut mem, tag);
            assert_eq!(t1 - t0, u64::from(access), "access={access}");
            assert_eq!(beats.len(), 1);
            assert_eq!(beats[0].value, Some(77));
        }
    }

    #[test]
    fn line_streams_over_narrow_bus() {
        let mut mem = MemorySystem::new(cfg(6, false, 4));
        let tag = mem.new_tag();
        let t0 = drive_until_accepted(&mut mem, MemRequest::load(ReqClass::IFetch, 0x40, 16, tag));
        let (t_last, beats) = drain_tag(&mut mem, tag);
        assert_eq!(beats.len(), 4);
        assert_eq!(beats[0].addr, 0x40);
        assert_eq!(beats[3].addr, 0x4C);
        assert!(beats[3].last);
        assert!(!beats[0].last);
        // First beat at t0+6, one per cycle after.
        assert_eq!(t_last - t0, 6 + 3);
    }

    #[test]
    fn wide_bus_halves_beats() {
        let mut mem = MemorySystem::new(cfg(1, false, 8));
        let tag = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::load(ReqClass::IFetch, 0x40, 16, tag));
        let (_, beats) = drain_tag(&mut mem, tag);
        assert_eq!(beats.len(), 2);
        assert_eq!(beats[0].bytes, 8);
    }

    #[test]
    fn non_pipelined_serializes_requests() {
        let mut mem = MemorySystem::new(cfg(6, false, 4));
        let t1 = mem.new_tag();
        let t2 = mem.new_tag();
        // Offer both every cycle; loads beat prefetches.
        let mut accept_cycles = Vec::new();
        for _ in 0..40 {
            let at = mem.cycle();
            mem.offer(MemRequest::load(ReqClass::DataLoad, 0x0, 4, t1));
            mem.offer(MemRequest::load(ReqClass::IPrefetch, 0x40, 4, t2));
            let out = mem.tick();
            if let Some(tag) = out.accepted {
                accept_cycles.push((tag, at));
            }
            if accept_cycles.len() == 2 {
                break;
            }
        }
        assert_eq!(accept_cycles.len(), 2);
        assert_eq!(accept_cycles[0].0, t1, "load accepted first");
        // Second acceptance must wait for the first response to finish:
        // first beat at t+6 (same-tick delivery-then-accept allows reuse).
        assert_eq!(accept_cycles[1].1 - accept_cycles[0].1, 6);
    }

    #[test]
    fn pipelined_accepts_every_cycle() {
        let mut mem = MemorySystem::new(cfg(6, true, 4));
        let t1 = mem.new_tag();
        let t2 = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x0, 4, t1));
        let out = mem.tick();
        assert_eq!(out.accepted, Some(t1));
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x4, 4, t2));
        let out = mem.tick();
        assert_eq!(out.accepted, Some(t2));
        // Both return, in order, 6 cycles after their acceptance.
        let (_, b1) = drain_tag(&mut mem, t1);
        assert_eq!(b1.len(), 1);
        let (_, b2) = drain_tag(&mut mem, t2);
        assert_eq!(b2.len(), 1);
    }

    #[test]
    fn instruction_priority_beats_data() {
        let mut mem = MemorySystem::new(cfg(1, false, 4));
        let ti = mem.new_tag();
        let td = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x0, 4, td));
        mem.offer(MemRequest::load(ReqClass::IFetch, 0x40, 4, ti));
        let out = mem.tick();
        assert_eq!(out.accepted, Some(ti));
        assert_eq!(mem.stats().contended_cycles, 1);
    }

    #[test]
    fn data_priority_policy() {
        let mut c = cfg(1, false, 4);
        c.priority = PriorityPolicy::DataFirst;
        let mut mem = MemorySystem::new(c);
        let ti = mem.new_tag();
        let td = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::IFetch, 0x40, 4, ti));
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x0, 4, td));
        let out = mem.tick();
        assert_eq!(out.accepted, Some(td));
    }

    #[test]
    fn prefetch_is_lowest_priority() {
        let mut mem = MemorySystem::new(cfg(1, false, 4));
        let tp = mem.new_tag();
        let ts = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::IPrefetch, 0x40, 4, tp));
        mem.offer(MemRequest::store(0x0, 5, ts));
        let out = mem.tick();
        assert_eq!(out.accepted, Some(ts));
    }

    #[test]
    fn store_writes_data_memory() {
        let mut mem = MemorySystem::new(cfg(1, false, 4));
        let tag = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(0x200, 123, tag));
        assert_eq!(mem.data().read(0x200), 123);
    }

    #[test]
    fn store_occupies_non_pipelined_memory() {
        let mut mem = MemorySystem::new(cfg(6, false, 4));
        let ts = mem.new_tag();
        let tl = mem.new_tag();
        let t0 = drive_until_accepted(&mut mem, MemRequest::store(0x200, 1, ts));
        let t1 = drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x200, 4, tl));
        assert_eq!(t1 - t0, 6);
    }

    #[test]
    fn fpu_stores_trigger_operation_and_result_returns() {
        let mut mem = MemorySystem::new(cfg(1, false, 4));
        let a = mem.new_tag();
        let b = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(FPU_BASE, 2.5f32.to_bits(), a));
        let t_b = drive_until_accepted(
            &mut mem,
            MemRequest::store(FPU_BASE + 4, 4.0f32.to_bits(), b),
        );
        assert_eq!(mem.stats().fpu_ops, 1);
        // Result beat (tag 0, FpuResult) after fpu_latency.
        let mut result_cycle = None;
        for _ in 0..20 {
            let at = mem.cycle();
            let out = mem.tick();
            if let Some(beat) = out.beats.as_ref() {
                if beat.source == BeatSource::FpuResult {
                    assert_eq!(beat.value, Some(10.0f32.to_bits()));
                    result_cycle = Some(at);
                    break;
                }
            }
        }
        let rc = result_cycle.expect("fpu result returned");
        assert_eq!(rc - t_b, 4, "fpu latency");
    }

    #[test]
    fn fpu_result_outranks_prefetch_on_input_bus() {
        // Start a multiply, then keep a prefetch in flight; when both are
        // ready for the bus the FPU result must go first.
        let mut mem = MemorySystem::new(cfg(1, true, 4));
        let a = mem.new_tag();
        let b = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(FPU_BASE, 1.0f32.to_bits(), a));
        drive_until_accepted(
            &mut mem,
            MemRequest::store(FPU_BASE + 4, 2.0f32.to_bits(), b),
        );
        // Prefetch accepted now; ready at +1, FPU ready at +4. Stall the
        // bus by requesting a long prefetch right when FPU becomes ready.
        let tp = mem.new_tag();
        mem.tick();
        mem.tick();
        mem.offer(MemRequest::load(ReqClass::IPrefetch, 0x40, 4, tp));
        let out = mem.tick(); // accepted; fpu ready next cycle, prefetch too
        assert_eq!(out.accepted, Some(tp));
        let out = mem.tick();
        // Both became deliverable this cycle; FPU wins.
        assert_eq!(out.beats.unwrap().source, BeatSource::FpuResult);
        let out = mem.tick();
        assert_eq!(out.beats.unwrap().source, BeatSource::IPrefetch);
    }

    #[test]
    fn is_idle_reflects_all_state() {
        let mut mem = MemorySystem::new(cfg(2, false, 4));
        assert!(mem.is_idle());
        let tag = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x0, 4, tag));
        mem.tick();
        assert!(!mem.is_idle());
        drain_tag(&mut mem, tag);
        assert!(mem.is_idle());
    }

    #[test]
    fn offers_expire_each_cycle() {
        let mut mem = MemorySystem::new(cfg(6, false, 4));
        let t1 = mem.new_tag();
        let t2 = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x0, 4, t1));
        // Offer t2 once while busy — not accepted, and it must not be
        // accepted later from a stale port.
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x4, 4, t2));
        let out = mem.tick();
        assert!(out.accepted.is_none());
        assert_eq!(mem.stats().blocked_cycles, 1);
        for _ in 0..20 {
            let out = mem.tick();
            assert!(out.accepted.is_none(), "stale offer was accepted");
        }
    }

    #[test]
    fn withdraw_removes_offer() {
        let mut mem = MemorySystem::new(cfg(1, false, 4));
        let t = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x0, 4, t));
        mem.withdraw(ReqClass::DataLoad);
        let out = mem.tick();
        assert!(out.accepted.is_none());
    }

    #[test]
    fn external_cache_miss_penalty_applies() {
        use crate::extcache::ExternalCacheConfig;
        let mut c = cfg(1, false, 4);
        c.external_cache = Some(ExternalCacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            miss_penalty: 10,
        });
        let mut mem = MemorySystem::new(c);
        // First access: cold miss, +10 cycles.
        let t1 = mem.new_tag();
        let a1 = drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x100, 4, t1));
        let (d1, _) = drain_tag(&mut mem, t1);
        assert_eq!(d1 - a1, 11, "access 1 + penalty 10");
        // Same line again: hit, no penalty.
        let t2 = mem.new_tag();
        let a2 = drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x104, 4, t2));
        let (d2, _) = drain_tag(&mut mem, t2);
        assert_eq!(d2 - a2, 1);
        let ec = mem.external_cache().unwrap();
        assert_eq!(ec.misses(), 1);
        assert_eq!(ec.hits(), 1);
    }

    #[test]
    fn fpu_traffic_bypasses_external_cache() {
        use crate::extcache::ExternalCacheConfig;
        let mut c = cfg(1, false, 4);
        c.external_cache = Some(ExternalCacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            miss_penalty: 50,
        });
        let mut mem = MemorySystem::new(c);
        let a = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(FPU_BASE, 1.0f32.to_bits(), a));
        assert_eq!(mem.external_cache().unwrap().misses(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid MemConfig")]
    fn invalid_config_panics() {
        let c = MemConfig {
            access_cycles: 0,
            ..MemConfig::default()
        };
        let _ = MemorySystem::new(c);
    }

    #[test]
    fn quiet_window_ends_exactly_at_first_beat() {
        // Accept a 6-cycle load, then the window must cover precisely the
        // cycles before its first beat: each intermediate tick is a no-op
        // and the tick right after the window delivers.
        let mut mem = MemorySystem::new(cfg(6, false, 4));
        let tag = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x40, 4, tag));
        let quiet = mem.quiet_cycles(false);
        assert!(quiet > 0, "a slow access must open a window");
        for _ in 0..quiet {
            let out = mem.tick();
            assert!(out.beats.is_none() && out.accepted.is_none());
        }
        assert_eq!(mem.quiet_cycles(false), 0, "window fully consumed");
        let out = mem.tick();
        assert_eq!(out.beats.map(|b| b.tag), Some(tag));
    }

    #[test]
    fn skip_quiet_matches_ticked_stats() {
        // Two identical systems, one ticked through a blocked window with
        // two standing offers, the other skipping it: bit-identical stats.
        let build = || {
            let mut mem = MemorySystem::new(cfg(6, false, 4));
            let tag = mem.new_tag();
            drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x40, 4, tag));
            mem
        };
        let mut ticked = build();
        let mut skipped = build();
        let offers = |mem: &mut MemorySystem| {
            let t1 = mem.next_tag;
            let t2 = t1 + 1;
            mem.offer(MemRequest::load(ReqClass::IFetch, 0x80, 4, t1));
            mem.offer(MemRequest::load(ReqClass::IPrefetch, 0x90, 4, t2));
        };
        let quiet = {
            offers(&mut ticked);
            let q = ticked.quiet_cycles(true);
            ticked.ports = Default::default();
            q
        };
        assert!(quiet > 0);
        for _ in 0..quiet {
            offers(&mut ticked);
            let out = ticked.tick();
            assert!(out.beats.is_none() && out.accepted.is_none());
        }
        skipped.skip_quiet(quiet, 2);
        assert_eq!(ticked.stats(), skipped.stats());
        assert_eq!(ticked.cycle(), skipped.cycle());
    }

    #[test]
    fn dcache_hit_bypasses_port_and_returns_next_cycle() {
        use crate::dcache::DCacheConfig;
        let mut c = cfg(6, false, 4);
        c.d_cache = Some(DCacheConfig {
            size_bytes: 256,
            line_bytes: 16,
            ways: 1,
        });
        let mut mem = MemorySystem::new(c);
        mem.data_mut().write(0x100, 55);
        // Cold miss: the load goes through the port at full latency and
        // fills the line.
        let t1 = mem.new_tag();
        let a1 = drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x100, 4, t1));
        let (d1, _) = drain_tag(&mut mem, t1);
        assert_eq!(d1 - a1, 6);
        assert_eq!(mem.stats().d_misses, 1);
        // Warm hit: intercepted same cycle, value one cycle later, off
        // the bus.
        let t2 = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x104, 4, t2));
        let out = mem.tick();
        assert_eq!(out.d_accepted, Some(t2));
        assert_eq!(out.accepted, None, "hit never uses the port");
        let bus_bytes = mem.stats().in_bus_bytes;
        let out = mem.tick();
        let beat = out.d_beat.expect("hit value next cycle");
        assert_eq!(beat.tag, t2);
        assert_eq!(beat.value, Some(0), "0x104 unwritten");
        assert!(beat.last);
        assert_eq!(mem.stats().in_bus_bytes, bus_bytes, "no bus traffic");
        assert_eq!(mem.stats().d_hits, 1);
        assert!(mem.is_idle());
    }

    #[test]
    fn dcache_hit_accepted_while_port_busy() {
        use crate::dcache::DCacheConfig;
        let mut c = cfg(6, false, 4);
        c.d_cache = Some(DCacheConfig {
            size_bytes: 256,
            line_bytes: 16,
            ways: 1,
        });
        let mut mem = MemorySystem::new(c);
        // Warm the line, then occupy the port with a slow prefetch.
        let t1 = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::load(ReqClass::DataLoad, 0x100, 4, t1));
        drain_tag(&mut mem, t1);
        let tp = mem.new_tag();
        drive_until_accepted(
            &mut mem,
            MemRequest::load(ReqClass::IPrefetch, 0x40, 16, tp),
        );
        // The port is busy, but a hitting load is still serviced.
        let t2 = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x100, 4, t2));
        let out = mem.tick();
        assert_eq!(out.d_accepted, Some(t2));
    }

    #[test]
    fn dcache_store_is_write_through_no_allocate() {
        use crate::dcache::DCacheConfig;
        let mut c = cfg(1, false, 4);
        c.d_cache = Some(DCacheConfig {
            size_bytes: 256,
            line_bytes: 16,
            ways: 1,
        });
        let mut mem = MemorySystem::new(c);
        // A store miss writes memory through the port without allocating.
        let ts = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(0x200, 9, ts));
        assert_eq!(mem.data().read(0x200), 9);
        assert_eq!(mem.stats().d_store_hits, 0);
        let tl = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x200, 4, tl));
        let out = mem.tick();
        assert_eq!(out.d_accepted, None, "store miss must not allocate");
        // Warm the line via the load, then a store to it counts a hit and
        // still writes through.
        drain_tag(&mut mem, tl);
        let ts2 = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(0x204, 11, ts2));
        assert_eq!(mem.stats().d_store_hits, 1);
        assert_eq!(mem.data().read(0x204), 11);
    }

    #[test]
    fn dcache_fpu_traffic_bypasses() {
        use crate::dcache::DCacheConfig;
        let mut c = cfg(1, false, 4);
        c.d_cache = Some(DCacheConfig {
            size_bytes: 256,
            line_bytes: 16,
            ways: 1,
        });
        let mut mem = MemorySystem::new(c);
        let a = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(FPU_BASE, 1.0f32.to_bits(), a));
        assert_eq!(mem.stats().d_store_hits, 0);
        assert_eq!(mem.stats().d_misses, 0);
    }

    #[test]
    fn dcache_disabled_output_unchanged() {
        // With no D-cache the new TickOutput fields stay empty forever.
        let mut mem = MemorySystem::new(cfg(1, false, 4));
        let t = mem.new_tag();
        mem.offer(MemRequest::load(ReqClass::DataLoad, 0x100, 4, t));
        for _ in 0..10 {
            let out = mem.tick();
            assert_eq!(out.d_accepted, None);
            assert_eq!(out.d_beat, None);
        }
        assert_eq!(mem.stats().d_hits, 0);
        assert_eq!(mem.stats().d_misses, 0);
    }

    #[test]
    fn quiet_window_bounded_by_store_busy() {
        // A non-pipelined store occupies memory for `access` cycles;
        // `is_idle` flips when it completes, so the window must end there
        // even with nothing else pending.
        let mut mem = MemorySystem::new(cfg(5, false, 4));
        let tag = mem.new_tag();
        drive_until_accepted(&mut mem, MemRequest::store(0x40, 7, tag));
        assert!(!mem.is_idle());
        let quiet = mem.quiet_cycles(false);
        assert!(quiet > 0);
        mem.skip_quiet(quiet, 0);
        assert!(mem.is_idle(), "window ends exactly at store completion");
    }
}
