//! # pipe-mem
//!
//! The external memory subsystem of the PIPE simulation, reproducing the
//! model in Figure 3 of Farrens & Pleszkun (ISCA 1989):
//!
//! * A large external cache with a **100 % hit rate** and a configurable
//!   access time (1–6 cycles in the paper's sweeps).
//! * Separate **input and output buses** connecting the processor chip to
//!   the external cache. The input (return) bus has a configurable width in
//!   bytes per cycle; responses *stream* over it, so a consumer may use the
//!   first beats of a cache line before the line has fully arrived.
//! * Optional **pipelining**: a pipelined memory accepts a new request every
//!   cycle; a non-pipelined memory services one request at a time.
//! * **Bus arbitration** (paper §5): data and instruction loads and stores
//!   have precedence, followed by floating-point results, with instruction
//!   prefetches last. Whether demand instruction fetches rank above or
//!   below data requests is the [`PriorityPolicy`] parameter; the paper's
//!   presented results give instructions priority.
//! * A **memory-mapped floating-point unit**: the processor has no FP
//!   hardware, so a pair of data stores to the FPU window triggers an
//!   operation whose result returns over the input bus after a constant
//!   latency (4 cycles in the paper).
//!
//! The memory system models *timing*; instruction bytes are owned by the
//! fetch engines (`pipe-icache`), while data values live in the
//! [`DataMemory`] owned by this crate.
//!
//! ## Usage sketch
//!
//! ```
//! use pipe_mem::{MemConfig, MemorySystem, MemRequest, ReqClass};
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let tag = mem.new_tag();
//! mem.offer(MemRequest::load(ReqClass::DataLoad, 0x1000, 4, tag));
//! let out = mem.tick(); // cycle 0: request accepted
//! assert_eq!(out.accepted, Some(tag));
//! let out = mem.tick(); // cycle 1 (access time 1): data beat arrives
//! assert!(out.beats.unwrap().last);
//! ```

pub mod config;
pub mod data;
pub mod dcache;
pub mod error;
pub mod extcache;
pub mod fpu;
pub mod request;
pub mod stats;
pub mod system;

pub use config::{MemConfig, PriorityPolicy};
pub use data::DataMemory;
pub use dcache::{DCache, DCacheConfig};
pub use error::ConfigError;
pub use extcache::{ExternalCache, ExternalCacheConfig};
pub use fpu::{FpOp, Fpu};
pub use request::{Beat, BeatSource, MemRequest, ReqClass};
pub use stats::MemStats;
pub use system::{MemorySystem, TickOutput};
