//! The data memory image behind the external cache.
//!
//! The paper assumes the external cache hits 100 % of the time, so the
//! simulator needs only a flat value store. Values are 32-bit words at
//! 4-byte-aligned byte addresses; unwritten locations read as zero.

use std::collections::HashMap;

/// Sparse 32-bit word memory, addressed by byte address.
#[derive(Debug, Clone, Default)]
pub struct DataMemory {
    words: HashMap<u32, u32>,
}

impl DataMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> DataMemory {
        DataMemory::default()
    }

    /// Creates a memory pre-loaded from `(byte address, value)` pairs.
    pub fn from_image<I: IntoIterator<Item = (u32, u32)>>(image: I) -> DataMemory {
        let mut mem = DataMemory::new();
        for (addr, value) in image {
            mem.write(addr, value);
        }
        mem
    }

    fn key(addr: u32) -> u32 {
        addr & !3
    }

    /// Reads the 32-bit word containing `addr` (aligned down).
    pub fn read(&self, addr: u32) -> u32 {
        self.words.get(&Self::key(addr)).copied().unwrap_or(0)
    }

    /// Writes the 32-bit word containing `addr` (aligned down).
    pub fn write(&mut self, addr: u32, value: u32) {
        self.words.insert(Self::key(addr), value);
    }

    /// Reads an IEEE-754 single-precision value.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read(addr))
    }

    /// Writes an IEEE-754 single-precision value.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write(addr, value.to_bits());
    }

    /// Number of distinct words ever written.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if nothing was ever written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates over `(aligned byte address, value)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }
}

impl PartialEq for DataMemory {
    /// Two memories are equal when every address reads the same value —
    /// explicit zeros count as unwritten.
    fn eq(&self, other: &DataMemory) -> bool {
        self.iter().all(|(a, v)| other.read(a) == v) && other.iter().all(|(a, v)| self.read(a) == v)
    }
}

impl Eq for DataMemory {}

impl FromIterator<(u32, u32)> for DataMemory {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> DataMemory {
        DataMemory::from_image(iter)
    }
}

impl Extend<(u32, u32)> for DataMemory {
    fn extend<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) {
        for (addr, value) in iter {
            self.write(addr, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let m = DataMemory::new();
        assert_eq!(m.read(0x1234), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = DataMemory::new();
        m.write(0x100, 42);
        assert_eq!(m.read(0x100), 42);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn unaligned_access_hits_containing_word() {
        let mut m = DataMemory::new();
        m.write(0x100, 7);
        assert_eq!(m.read(0x102), 7);
        m.write(0x103, 9);
        assert_eq!(m.read(0x100), 9);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = DataMemory::new();
        m.write_f32(0x200, 3.25);
        assert_eq!(m.read_f32(0x200), 3.25);
    }

    #[test]
    fn from_image_and_extend() {
        let mut m: DataMemory = vec![(0, 1), (4, 2)].into_iter().collect();
        m.extend(vec![(8, 3)]);
        assert_eq!(m.read(4), 2);
        assert_eq!(m.read(8), 3);
        assert_eq!(m.len(), 3);
    }
}
