//! An optional on-chip data cache.
//!
//! The paper's PIPE processor has no data cache: every load and store
//! crosses the chip boundary and competes with instruction fetch for the
//! shared memory port. This module adds the natural extension study — a
//! small write-through, no-write-allocate D-cache in front of the port.
//! A load that hits is serviced on chip (one-cycle latency) without
//! touching the port at all, so D-cache capacity directly relieves the
//! I-vs-D bus contention the paper's priority knob arbitrates.
//!
//! Like [`crate::extcache::ExternalCache`], the cache is a *tag-only*
//! timing model: data values always come from the single
//! [`crate::DataMemory`] image, which write-through keeps coherent by
//! construction.

use std::fmt;

use crate::error::{require_at_most, require_power_of_two, ConfigError};

/// Geometry of the on-chip data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DCacheConfig {
    /// Capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two, ≤ size).
    pub line_bytes: u32,
    /// Associativity (power of two, ≤ number of lines). 1 is
    /// direct-mapped.
    pub ways: u32,
}

impl DCacheConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for non-power-of-two or inconsistent
    /// sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_power_of_two("d_cache.size_bytes", self.size_bytes)?;
        require_power_of_two("d_cache.line_bytes", self.line_bytes)?;
        require_at_most(
            "d_cache.line_bytes",
            self.line_bytes,
            "d_cache.size_bytes",
            self.size_bytes,
        )?;
        require_power_of_two("d_cache.ways", self.ways)?;
        require_at_most(
            "d_cache.ways",
            self.ways,
            "d_cache.size_bytes / d_cache.line_bytes",
            self.size_bytes / self.line_bytes,
        )
    }
}

impl fmt::Display for DCacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B d-cache, {}B lines, {}-way",
            self.size_bytes, self.line_bytes, self.ways
        )
    }
}

/// The D-cache tag store: set-associative with true-LRU replacement.
///
/// Loads probe with [`lookup`](DCache::lookup) every cycle their request
/// stands; only a hit mutates state (LRU touch + hit counter), so a
/// blocked missing load does not inflate the miss count — the miss is
/// charged once, by [`fill`](DCache::fill), when the memory port accepts
/// it. Stores are write-through and never allocate:
/// [`store_probe`](DCache::store_probe) just refreshes LRU and counts
/// whether the line was present.
#[derive(Debug, Clone)]
pub struct DCache {
    cfg: DCacheConfig,
    sets: u32,
    /// `sets * ways` slots, way-major within each set.
    tags: Vec<Option<u32>>,
    /// LRU stamps parallel to `tags`; larger is more recent.
    stamps: Vec<u64>,
    touch: u64,
    hits: u64,
    misses: u64,
    store_hits: u64,
}

impl DCache {
    /// Creates an empty D-cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: DCacheConfig) -> DCache {
        if let Err(e) = cfg.validate() {
            panic!("invalid DCacheConfig: {e}");
        }
        let lines = cfg.size_bytes / cfg.line_bytes;
        let sets = lines / cfg.ways;
        DCache {
            cfg,
            sets,
            tags: vec![None; lines as usize],
            stamps: vec![0; lines as usize],
            touch: 0,
            hits: 0,
            misses: 0,
            store_hits: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DCacheConfig {
        &self.cfg
    }

    /// Returns the slot range of the set holding `addr`, and its tag.
    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.cfg.line_bytes;
        let set = line % self.sets;
        ((set * self.cfg.ways) as usize, line / self.sets)
    }

    fn find(&self, base: usize, tag: u32) -> Option<usize> {
        (base..base + self.cfg.ways as usize).find(|&i| self.tags[i] == Some(tag))
    }

    /// Probes for a load: on a hit, refreshes LRU, counts it, and returns
    /// `true`. A miss leaves the cache untouched (the caller charges it
    /// via [`fill`](DCache::fill) once the port accepts the request).
    pub fn lookup(&mut self, addr: u32) -> bool {
        let (base, tag) = self.set_and_tag(addr);
        match self.find(base, tag) {
            Some(slot) => {
                self.touch += 1;
                self.stamps[slot] = self.touch;
                self.hits += 1;
                true
            }
            None => false,
        }
    }

    /// Allocates the line holding `addr` (evicting LRU) and counts a miss.
    pub fn fill(&mut self, addr: u32) {
        let (base, tag) = self.set_and_tag(addr);
        self.misses += 1;
        self.touch += 1;
        let slot = self.find(base, tag).unwrap_or_else(|| {
            (base..base + self.cfg.ways as usize)
                .min_by_key(|&i| self.stamps[i])
                .expect("ways >= 1")
        });
        self.tags[slot] = Some(tag);
        self.stamps[slot] = self.touch;
    }

    /// Probes for a write-through store: refreshes LRU and counts a store
    /// hit when the line is present; never allocates.
    pub fn store_probe(&mut self, addr: u32) -> bool {
        let (base, tag) = self.set_and_tag(addr);
        match self.find(base, tag) {
            Some(slot) => {
                self.touch += 1;
                self.stamps[slot] = self.touch;
                self.store_hits += 1;
                true
            }
            None => false,
        }
    }

    /// Lifetime load hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime load misses (charged at port acceptance).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime store hits (write-through; stores always use the port).
    pub fn store_hits(&self) -> u64 {
        self.store_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u32, line: u32, ways: u32) -> DCache {
        DCache::new(DCacheConfig {
            size_bytes: size,
            line_bytes: line,
            ways,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache(256, 16, 1);
        assert!(!c.lookup(0x100));
        assert_eq!(c.misses(), 0, "probing a miss does not charge it");
        c.fill(0x100);
        assert_eq!(c.misses(), 1);
        assert!(c.lookup(0x104), "same line");
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = cache(64, 16, 1); // 4 lines
        c.fill(0x00);
        c.fill(0x40); // same set (line 0 vs line 4, 4 sets)
        assert!(!c.lookup(0x00));
        assert!(c.lookup(0x40));
    }

    #[test]
    fn two_way_keeps_both_conflicting_lines() {
        let mut c = cache(64, 16, 2); // 4 lines, 2 sets
        c.fill(0x00);
        c.fill(0x20); // same set, second way
        assert!(c.lookup(0x00));
        assert!(c.lookup(0x20));
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut c = cache(64, 16, 2); // 2 sets of 2 ways
        c.fill(0x00);
        c.fill(0x20);
        assert!(c.lookup(0x00)); // 0x00 now MRU
        c.fill(0x40); // same set: evicts 0x20
        assert!(c.lookup(0x00));
        assert!(!c.lookup(0x20));
        assert!(c.lookup(0x40));
    }

    #[test]
    fn store_probe_never_allocates() {
        let mut c = cache(256, 16, 1);
        assert!(!c.store_probe(0x100));
        assert!(!c.lookup(0x100), "store miss must not allocate");
        c.fill(0x100);
        assert!(c.store_probe(0x104));
        assert_eq!(c.store_hits(), 1);
    }

    #[test]
    fn fully_associative_geometry() {
        let mut c = cache(64, 16, 4); // one set, 4 ways
        for a in [0x00u32, 0x10, 0x20, 0x30] {
            c.fill(a);
        }
        for a in [0x00u32, 0x10, 0x20, 0x30] {
            assert!(c.lookup(a));
        }
    }

    #[test]
    fn validation() {
        for bad in [
            DCacheConfig {
                size_bytes: 0,
                line_bytes: 16,
                ways: 1,
            },
            DCacheConfig {
                size_bytes: 64,
                line_bytes: 128,
                ways: 1,
            },
            DCacheConfig {
                size_bytes: 64,
                line_bytes: 16,
                ways: 3,
            },
            DCacheConfig {
                size_bytes: 64,
                line_bytes: 16,
                ways: 8,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        assert!(DCacheConfig {
            size_bytes: 1024,
            line_bytes: 16,
            ways: 2,
        }
        .validate()
        .is_ok());
    }
}
