//! Explore the cache design space: sweep cache sizes and memory speeds
//! for one strategy and print a cycles table — a small interactive version
//! of the paper's figures.
//!
//! ```sh
//! cargo run --release --example cache_design_space [pipe|conventional]
//! ```

use pipe_repro::prelude::*;

fn main() {
    let strategy = std::env::args().nth(1).unwrap_or_else(|| "pipe".into());
    let suite = livermore_benchmark();

    println!("strategy: {strategy}");
    println!("total cycles for the 150,575-instruction Livermore benchmark");
    println!("(rows: cache size; columns: memory access time, 8-byte bus)\n");

    let sizes = [16u32, 32, 64, 128, 256, 512];
    let accesses = [1u32, 2, 3, 6];

    print!("{:>8}", "size");
    for a in accesses {
        print!("{:>12}", format!("{a}-cycle"));
    }
    println!();

    for size in sizes {
        let fetch = match strategy.as_str() {
            "conventional" => {
                if size < 16 {
                    continue;
                }
                FetchStrategy::conventional(CacheConfig::new(size, 16))
            }
            _ => {
                if size < 16 {
                    continue;
                }
                FetchStrategy::Pipe(PipeFetchConfig::table2(size, 16, 16, 16))
            }
        };
        print!("{:>7}B", size);
        for access in accesses {
            let cfg = SimConfig {
                fetch,
                mem: MemConfig {
                    access_cycles: access,
                    in_bus_bytes: 8,
                    ..MemConfig::default()
                },
                ..SimConfig::default()
            };
            let stats = run_program(suite.program(), &cfg).expect("runs");
            print!("{:>12}", stats.cycles);
        }
        println!();
    }

    println!("\nTry `cargo run --release --example cache_design_space conventional`");
    println!("and compare: the PIPE columns barely move with cache size.");
}
