//! Run the Livermore benchmark on every instruction-fetch engine at the
//! same hardware budget and compare: the paper's §2 survey as one table.
//!
//! ```sh
//! cargo run --release --example engine_shootout [budget_bytes] [access] [bus]
//! ```

use pipe_repro::core::{run_program, FetchStrategy, SimConfig};
use pipe_repro::icache::{BufferConfig, CacheConfig, PipeFetchConfig, TibConfig};
use pipe_repro::mem::MemConfig;
use pipe_repro::prelude::livermore_benchmark;

fn main() {
    let mut args = std::env::args().skip(1);
    let budget: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let access: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let bus: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let suite = livermore_benchmark();
    let mem = MemConfig {
        access_cycles: access,
        in_bus_bytes: bus,
        ..MemConfig::default()
    };
    println!(
        "Livermore benchmark ({} instructions), {budget}-byte budget, \
         {access}-cycle memory, {bus}-byte bus\n",
        suite.expected_instructions()
    );

    let engines: Vec<(&str, FetchStrategy)> = vec![
        ("perfect (lower bound)", FetchStrategy::Perfect),
        (
            "conventional cache (Hill always-prefetch)",
            FetchStrategy::conventional(CacheConfig::new(budget.max(16), 16)),
        ),
        (
            "target instruction buffer (AMD29000-style)",
            FetchStrategy::Tib(TibConfig::with_budget(budget.max(16), 16)),
        ),
        (
            "prefetch buffers (Rau & Rossman, 4x4B)",
            FetchStrategy::Buffers(BufferConfig {
                buffers: 4,
                cache: None,
            }),
        ),
        (
            "PIPE cache + IQ + IQB (the paper)",
            FetchStrategy::Pipe(PipeFetchConfig::table2(budget.max(16), 16, 16, 16)),
        ),
    ];

    println!(
        "{:<44} {:>10}  {:>5}  {:>14}",
        "engine", "cycles", "CPI", "bytes fetched"
    );
    for (name, fetch) in engines {
        let cfg = SimConfig {
            fetch,
            mem,
            ..SimConfig::default()
        };
        match run_program(suite.program(), &cfg) {
            Ok(stats) => println!(
                "{name:<44} {:>10}  {:>5.2}  {:>14}",
                stats.cycles,
                stats.cpi(),
                stats.fetch.bytes_requested
            ),
            Err(e) => println!("{name:<44} failed: {e}"),
        }
    }

    println!(
        "\nThe PIPE strategy wins on cycles; note the TIB's flat-but-huge\n\
         traffic and how the conventional cache needs a much larger budget\n\
         to catch up (try `engine_shootout 512`)."
    );
}
