//! Demonstrates the decoupled architectural queues and the memory-mapped
//! FPU: computing a dot product the way the PIPE compiler would —
//! streaming loads into the LDQ, shipping operand pairs to the off-chip
//! FPU, and reading results back through `r7`.
//!
//! ```sh
//! cargo run --release --example fpu_pipeline
//! ```

use pipe_repro::isa::{FPU_OPERAND_A, FPU_OP_MUL};
use pipe_repro::prelude::*;

fn main() {
    // dot = Σ a[i] * b[i] for 4-element vectors. The accumulator lives in
    // r6 as an f32 bit pattern; each step is mul-then-add through the FPU.
    let source = r#"
        lim  r5, -4096        ; FPU base (0xFFFFF000)
        lim  r2, 0
        lui  r2, 0x10         ; r2 = 0x100000, vector a; b at +0x1000
        lim  r1, 4            ; element count
        lim  r6, 0            ; accumulator = 0.0f
        lbr  b0, top
    top:
        ldw  r2, 0            ; push &a[i] -> LAQ; a[i] will appear in LDQ
        ldw  r2, 0x1000       ; b[i]
        sta  r5, 0            ; FPU operand A address
        or   r7, r7, r7       ; move a[i] from LDQ to SDQ
        sta  r5, 4            ; FPU multiply trigger
        or   r7, r7, r7       ; move b[i]; product will return to the LDQ
        sta  r5, 0
        or   r7, r6, r6       ; operand A = accumulator
        sta  r5, 8            ; FPU add trigger
        or   r7, r7, r7       ; operand B = the product
        or   r6, r7, r7       ; accumulator = sum
        addi r2, r2, 4
        subi r1, r1, 1
        pbr.nez b0, r1, 0
        sta  r2, 0x2000       ; store the result after the loop
        or   r7, r6, r6
        halt

        .data 0x100000, 0x3F800000   ; a = [1.0, 2.0, 3.0, 4.0]
        .data 0x100004, 0x40000000
        .data 0x100008, 0x40400000
        .data 0x10000C, 0x40800000
        .data 0x101000, 0x40000000   ; b = [2.0, 2.0, 2.0, 2.0]
        .data 0x101004, 0x40000000
        .data 0x101008, 0x40000000
        .data 0x10100C, 0x40000000
    "#;

    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(source)
        .expect("assembles");

    let cfg = SimConfig {
        mem: MemConfig {
            access_cycles: 3,
            in_bus_bytes: 8,
            ..MemConfig::default()
        },
        ..SimConfig::default()
    };
    let mut proc = Processor::new(&program, &cfg).expect("valid config");
    proc.run().expect("runs");
    let stats = proc.stats();

    // The result was stored at the final r2 position + 0x2000.
    let result_addr = 0x100000 + 4 * 4 + 0x2000;
    let result = f32::from_bits(proc.mem().data().read(result_addr));
    println!("dot([1,2,3,4], [2,2,2,2]) = {result}");
    assert_eq!(result, 20.0);

    println!("cycles: {}", stats.cycles);
    println!("fpu operations: {}", stats.fpu_ops);
    println!(
        "data-wait stalls: {} (cycles the issue stage waited on the LDQ)",
        stats.stalls.data_wait
    );
    println!("constants: FPU_OPERAND_A={FPU_OPERAND_A:#x}, FPU_OP_MUL={FPU_OP_MUL:#x}");
}
