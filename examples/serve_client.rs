//! Drive the simulation service end to end, in process: start a server
//! on an ephemeral port, request the same simulation twice (computed,
//! then a cache hit), read the live metrics, and shut down gracefully.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! The same exchange works from the command line against
//! `pipe-sim serve` — see docs/SERVICE.md.

use std::time::Duration;

use pipe_server::{http_request, spawn, ServerConfig};

fn main() {
    let timeout = Duration::from_secs(30);
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();
    println!("serving on {addr}");

    // The body mirrors the pipe-sim flags: a PIPE engine with a 64-byte
    // cache over a small synthetic loop workload.
    let body = "{\"workload\":\"tight-loop\",\"body\":6,\"trips\":30,\
                \"fetch\":\"pipe\",\"cache\":64,\"line\":16}";
    for attempt in 1..=2 {
        let response = http_request(&addr, "POST", "/v1/simulate", Some(body), timeout)
            .expect("simulate request");
        println!(
            "simulate #{attempt}: {} (source {}, cache {})",
            response.status,
            response.header("x-pipe-source").unwrap_or("?"),
            response.header("x-pipe-cache").unwrap_or("?"),
        );
        println!("  {}", response.body_text());
    }

    let metrics = http_request(&addr, "GET", "/metrics", None, timeout).expect("metrics");
    let interesting = metrics
        .body_text()
        .lines()
        .filter(|l| l.starts_with("pipe_serve_sim_total") || l.starts_with("pipe_serve_requests"))
        .collect::<Vec<_>>()
        .join("\n");
    println!("metrics:\n{interesting}");

    handle.shutdown(timeout).expect("graceful shutdown");
    println!("server drained and exited");
}
