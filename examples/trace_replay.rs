//! Record one Livermore run as a binary trace, then replay the identical
//! instruction stream through three fetch engines — the trace subsystem's
//! "capture once, evaluate many" workflow.
//!
//! ```sh
//! cargo run --release --example trace_replay [scale]
//! ```
//!
//! `scale` divides the benchmark's iteration counts (default 10); use 1
//! for the paper's full 150,575-instruction run.

use std::cell::RefCell;
use std::io::Cursor;
use std::rc::Rc;

use pipe_repro::core::{Processor, SimConfig};
use pipe_repro::experiments::{mem_key, WorkloadSpec};
use pipe_repro::icache::{CacheConfig, PipeFetchConfig};
use pipe_repro::prelude::{FetchStrategy, InstrFormat};
use pipe_repro::trace::{program_fnv, replay_trace, TraceMeta, TraceReader, TraceRecorder};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10)
        .max(1);

    let spec = WorkloadSpec::Livermore {
        format: InstrFormat::Fixed32,
        scale,
    };
    let program = spec.build();
    let config = SimConfig::default();

    // --- record: one functional run, captured into an in-memory trace ---
    let meta = TraceMeta {
        workload: spec.key(),
        program_fnv: program_fnv(&program),
        entry_pc: program.entry(),
        fetch_key: config.fetch.cache_key(),
        mem_key: mem_key(&config.mem),
    };
    let recorder = Rc::new(RefCell::new(
        TraceRecorder::new(Vec::new(), &meta).expect("trace header writes"),
    ));
    let proc = Processor::new(&program, &config).expect("processor builds");
    let mut proc = proc.with_trace(Rc::clone(&recorder));
    proc.run().expect("benchmark runs");
    let stats = proc.stats();
    let (bytes, summary) = recorder
        .borrow_mut()
        .finish(stats.cycles)
        .expect("trace finishes");
    println!(
        "recorded {} instructions ({} cycles) into a {}-byte trace\n",
        summary.instructions,
        summary.cycles,
        bytes.len()
    );

    // --- replay: the same stream through three different fetch engines ---
    let engines: Vec<(&str, FetchStrategy)> = vec![
        (
            "conventional 64 B cache",
            FetchStrategy::conventional(CacheConfig::new(64, 16)),
        ),
        (
            "PIPE 16 B IQ + 16 B IQB",
            FetchStrategy::Pipe(PipeFetchConfig::table2(128, 16, 16, 16)),
        ),
        ("perfect fetch (lower bound)", FetchStrategy::Perfect),
    ];

    println!(
        "{:<28} {:>10} {:>8} {:>14} {:>12}",
        "engine", "cycles", "CPI", "ifetch stalls", "bytes req'd"
    );
    for (name, fetch) in engines {
        let reader = TraceReader::new(Cursor::new(bytes.clone())).expect("trace decodes");
        let outcome = replay_trace(reader, &program, &fetch, &config.mem).expect("trace replays");
        let s = &outcome.stats;
        println!(
            "{:<28} {:>10} {:>8.3} {:>14} {:>12}",
            name,
            s.cycles,
            s.cpi(),
            s.ifetch_stalls,
            s.fetch.bytes_requested
        );
    }
    println!(
        "\n(the recorded run used `{}` and took {} cycles; a replay under \
         that engine reproduces it bit for bit)",
        meta.fetch_key, summary.cycles
    );
}
