//! Run the paper's benchmark — the first 14 Lawrence Livermore loops,
//! 150,575 instructions — on both fetch strategies and compare.
//!
//! ```sh
//! cargo run --release --example livermore [access_cycles] [bus_bytes]
//! ```

use pipe_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let access: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let bus: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let suite = livermore_benchmark();
    println!(
        "Livermore benchmark: {} loops, {} instructions per run",
        suite.loops().len(),
        suite.expected_instructions()
    );
    println!("inner loop sizes (Table I):");
    for info in suite.loops() {
        println!(
            "  LL{:>2} {:<30} {:>4} bytes  x{} trips",
            info.index, info.name, info.inner_loop_bytes, info.trips
        );
    }

    let mem = MemConfig {
        access_cycles: access,
        in_bus_bytes: bus,
        ..MemConfig::default()
    };
    println!("\nmemory: {access}-cycle access, {bus}-byte input bus, non-pipelined\n");

    let configs: [(&str, FetchStrategy); 3] = [
        (
            "conventional 128B",
            FetchStrategy::conventional(CacheConfig::new(128, 16)),
        ),
        (
            "PIPE 128B (8-8, as built)",
            FetchStrategy::Pipe(PipeFetchConfig::table2(128, 8, 8, 8)),
        ),
        (
            "PIPE 32B (16-16)",
            FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        ),
    ];

    let mut baseline = None;
    for (name, fetch) in configs {
        let cfg = SimConfig {
            fetch,
            mem,
            ..SimConfig::default()
        };
        let stats = run_program(suite.program(), &cfg).expect("benchmark runs");
        let speedup = baseline
            .map(|b: u64| format!("  ({:.2}x vs conventional)", b as f64 / stats.cycles as f64))
            .unwrap_or_default();
        println!(
            "{name:<28} {:>9} cycles  CPI {:.2}{speedup}",
            stats.cycles,
            stats.cpi()
        );
        baseline.get_or_insert(stats.cycles);
    }

    println!(
        "\nNote how a 32-byte PIPE cache with IQ/IQB competes with (or beats)\n\
         a 4x larger conventional cache — the paper's headline result."
    );
}
