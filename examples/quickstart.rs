//! Quickstart: assemble a tiny PIPE program and run it on the simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pipe_repro::prelude::*;

fn main() {
    // A small loop that sums 1..=10 in r2, written in PIPE assembly.
    let source = r#"
        lim   r1, 10          ; loop counter
        lim   r2, 0           ; accumulator
        lbr   b0, top         ; load the loop-top address into b0
    top:
        add   r2, r2, r1      ; r2 += r1
        subi  r1, r1, 1
        pbr.nez b0, r1, 1     ; branch back while r1 != 0, one delay slot
        nop
        halt
    "#;
    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(source)
        .expect("assembles");

    // Run on the PIPE processor as built: a 128-byte instruction cache of
    // 8-byte lines with 8-byte IQ and IQB, fast external memory.
    let config = SimConfig::default();
    let stats = run_program(&program, &config).expect("runs");

    println!("program ran in {} cycles", stats.cycles);
    println!("instructions issued: {}", stats.instructions_issued);
    println!("CPI: {:.3}", stats.cpi());
    println!(
        "branches: {} taken / {} not taken",
        stats.branches_taken, stats.branches_not_taken
    );
    println!(
        "fetch: {} demand requests, {} prefetches, {:.1}% cache hit rate",
        stats.fetch.demand_requests,
        stats.fetch.prefetch_requests,
        stats.fetch.hit_rate() * 100.0
    );

    // The same program under the conventional always-prefetch cache.
    let conventional = SimConfig {
        fetch: FetchStrategy::conventional(CacheConfig::new(128, 16)),
        ..SimConfig::default()
    };
    let conv = run_program(&program, &conventional).expect("runs");
    println!(
        "\nconventional cache runs it in {} cycles (PIPE: {})",
        conv.cycles, stats.cycles
    );
}
