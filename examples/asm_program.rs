//! Assemble a bundled program with the pipe-asm front end, disassemble
//! it round-trip, and study the I-vs-D memory-port contention with and
//! without a data cache.
//!
//! ```sh
//! cargo run --release --example asm_program
//! ```

use pipe_repro::asm::{disassemble, find_program, Assembler, LIBRARY};
use pipe_repro::core::{run_program, SimConfig, SimStats};
use pipe_repro::experiments::figure_mem;
use pipe_repro::icache::PrefetchPolicy;
use pipe_repro::isa::InstrFormat;
use pipe_repro::mem::{DCacheConfig, MemConfig};

fn main() {
    // The bundled program library ships with the assembler crate.
    println!("bundled programs:");
    for p in LIBRARY {
        println!("  {:<8} {}", p.name, p.title);
    }

    // Assemble matmul: two-pass, labels and directives resolved.
    let lib = find_program("matmul").expect("matmul is bundled");
    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(lib.source)
        .expect("bundled matmul assembles");
    println!(
        "\nmatmul: {} parcels, {} code bytes",
        program.parcels().len(),
        program.code_bytes()
    );

    // The disassembler output re-assembles to the same parcel image.
    let listing = disassemble(&program);
    let again = Assembler::new(InstrFormat::Fixed32)
        .assemble(&listing)
        .expect("disassembly re-assembles");
    assert_eq!(program.parcels(), again.parcels());
    assert_eq!(program.data(), again.data());
    println!("round-trip: disassembly re-assembles bit-identically");

    // Run under the paper's slow 6-cycle, 4-byte-bus memory (figure 5a),
    // where every data access competes with instruction fetch for the
    // single memory port.
    let (mem, mem_desc) = figure_mem("5a");
    let fetch = pipe_repro::experiments::StrategyKind::Pipe16x16
        .fetch_for(128, PrefetchPolicy::TruePrefetch)
        .expect("pipe 16-16 supports 128B");
    let run = |d_cache: Option<DCacheConfig>| -> SimStats {
        let config = SimConfig {
            fetch,
            mem: MemConfig { d_cache, ..mem },
            ..SimConfig::default()
        };
        run_program(&program, &config).expect("matmul runs")
    };

    let without = run(None);
    let with = run(Some(DCacheConfig {
        size_bytes: 256,
        line_bytes: 16,
        ways: 2,
    }));

    println!("\nmemory: {mem_desc}");
    println!(
        "no D-cache:   {} cycles, {} contended cycles",
        without.cycles, without.mem.contended_cycles
    );
    println!(
        "256B D-cache: {} cycles, {} contended cycles, {} hits / {} misses ({:.1}% hit rate)",
        with.cycles,
        with.mem.contended_cycles,
        with.mem.d_hits,
        with.mem.d_misses,
        100.0 * with.mem.d_hits as f64 / (with.mem.d_hits + with.mem.d_misses).max(1) as f64,
    );
    println!(
        "speedup from the data side: {:.2}x",
        without.cycles as f64 / with.cycles as f64
    );
}
