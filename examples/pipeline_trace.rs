//! Watch the pipeline cycle by cycle: attach a text trace sink and print
//! every issue, stall, and branch resolution for a short program running
//! on a cold PIPE cache with slow memory.
//!
//! ```sh
//! cargo run --release --example pipeline_trace
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use pipe_repro::core::trace::TraceEvent;
use pipe_repro::core::{Processor, TextTrace, VecTrace};
use pipe_repro::prelude::*;

fn main() {
    let source = r#"
        lim  r1, 2
        lim  r2, 0x400
        lbr  b0, top
    top:
        ldw  r2, 0            ; load (6-cycle memory: watch the data-wait)
        or   r3, r7, r7
        addi r2, r2, 4
        subi r1, r1, 1
        pbr.nez b0, r1, 2
        nop
        nop
        halt
        .data 0x400, 11
        .data 0x404, 22
    "#;
    let program = Assembler::new(InstrFormat::Fixed32)
        .assemble(source)
        .expect("assembles");

    let cfg = SimConfig {
        fetch: FetchStrategy::Pipe(PipeFetchConfig::table2(32, 16, 16, 16)),
        mem: MemConfig {
            access_cycles: 6,
            in_bus_bytes: 4,
            ..MemConfig::default()
        },
        ..SimConfig::default()
    };

    // Two sinks: a live text renderer and a collector for the summary.
    let collector = Rc::new(RefCell::new(VecTrace::new()));
    struct Tee {
        text: TextTrace<std::io::Stdout>,
        collect: Rc<RefCell<VecTrace>>,
    }
    impl pipe_repro::core::TraceSink for Tee {
        fn event(&mut self, e: &TraceEvent) {
            self.text.event(e);
            self.collect.event(e);
        }
    }

    let proc = Processor::new(&program, &cfg).expect("valid config");
    let mut proc = proc.with_trace(Tee {
        text: TextTrace::new(std::io::stdout()),
        collect: Rc::clone(&collector),
    });
    proc.run().expect("runs");
    let stats = proc.stats();

    let events = collector.borrow();
    let stalls = events
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Stall { .. }))
        .count();
    println!(
        "\nsummary: {} cycles, {} instructions, {} stall events",
        stats.cycles, stats.instructions_issued, stalls
    );
    println!(
        "stall breakdown: {} ifetch, {} data-wait, {} queue, {} branch",
        stats.stalls.ifetch, stats.stalls.data_wait, stats.stalls.queue_full, stats.stalls.branch
    );
    assert_eq!(proc.regs().read(Reg::new(3)), 22);
}
