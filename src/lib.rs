//! # pipe-repro
//!
//! Facade crate for the reproduction of Farrens & Pleszkun, *Improving
//! Performance of Small On-Chip Instruction Caches* (ISCA 1989).
//!
//! This crate re-exports the workspace's public API so applications can
//! depend on a single crate:
//!
//! * [`isa`] — the PIPE instruction set, assembler and program builder.
//! * [`asm`] — the full assembler front end (`.org`/`.word` layout,
//!   column-precise diagnostics, round-trippable disassembler) and the
//!   bundled program library from `programs/`.
//! * [`mem`] — the external memory subsystem (buses, arbitration, FPU).
//! * [`icache`] — the on-chip instruction fetch engines (conventional
//!   always-prefetch and the PIPE cache + IQ + IQB strategy).
//! * [`core`] — the cycle-level PIPE processor simulator.
//! * [`workloads`] — the 14 Lawrence Livermore kernels and synthetic
//!   workloads.
//! * [`trace`] — record runs as compact binary traces and replay them
//!   through any fetch engine.
//! * [`experiments`] — the harness that regenerates every table and figure
//!   of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use pipe_repro::prelude::*;
//!
//! // Assemble a tiny program, run it on the PIPE fetch strategy.
//! let program = Assembler::new(InstrFormat::Fixed32)
//!     .assemble("lim r1, 5\nlbr b0, top\ntop: subi r1, r1, 1\npbr.nez b0, r1, 0\nhalt\n")
//!     .unwrap();
//! let config = SimConfig::default();
//! let stats = run_program(&program, &config).unwrap();
//! assert!(stats.instructions_issued > 0);
//! ```

pub use pipe_asm as asm;
pub use pipe_core as core;
pub use pipe_experiments as experiments;
pub use pipe_icache as icache;
pub use pipe_isa as isa;
pub use pipe_mem as mem;
pub use pipe_trace as trace;
pub use pipe_workloads as workloads;

/// Convenient single-import surface for examples and tests.
pub mod prelude {
    pub use pipe_asm::{disassemble, Assembler as AsmAssembler, LibraryProgram, LIBRARY};
    pub use pipe_core::{run_program, FetchStrategy, Processor, SimConfig, SimStats};
    pub use pipe_icache::{CacheConfig, PipeFetchConfig, PrefetchPolicy};
    pub use pipe_isa::{
        AluOp, Assembler, BranchReg, Cond, InstrFormat, Instruction, Program, ProgramBuilder, Reg,
    };
    pub use pipe_mem::{MemConfig, PriorityPolicy};
    pub use pipe_workloads::{livermore_benchmark, LivermoreSuite};
}
