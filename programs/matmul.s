; 4x4 single-precision matrix multiply: C = A * B.
;
; All floating-point work goes through the memory-mapped FPU: a store to
; FPU+0 latches operand A, a store to FPU+4 (multiply) or FPU+8 (add)
; supplies operand B and triggers the operation, and the result comes
; back through the load queue (readable as r7).
;
; A is filled with A[i][j] = (i + j + 1).0 and B is the identity, so the
; product C must equal A bit-for-bit (adding 0.0 terms is exact).
;
; Register use:
;   r0  j (column) counter        r4  i (row) counter
;   r1  A row pointer             r5  FPU base
;   r2  B column pointer          r6  C element pointer
;   r3  accumulator

.equ FPU,   0xFFFFF000
.equ ABASE, 0x400
.equ BBASE, 0x440
.equ CBASE, 0x480
.equ N,     4

        li32 r5, FPU
        li32 r1, ABASE
        li32 r6, CBASE
        lim  r4, N
        lbr  b1, iloop
        lbr  b0, jloop

iloop:  lim  r0, N
        li32 r2, BBASE          ; rewind B to column 0 for this row

jloop:
        ; k = 0: acc = A[i][0] * B[0][j]
        ldw  r1, 0
        ldw  r2, 0
        sta  r5, 0              ; FPU operand A = A[i][0]
        or   r7, r7, r7
        sta  r5, 4              ; multiply by B[0][j]
        or   r7, r7, r7
        or   r3, r7, r7         ; acc = product

        ; k = 1: acc += A[i][1] * B[1][j]
        ldw  r1, 4
        ldw  r2, 16
        sta  r5, 0
        or   r7, r7, r7
        sta  r5, 4
        or   r7, r7, r7
        sta  r5, 0              ; FPU operand A = acc
        or   r7, r3, r3
        sta  r5, 8              ; add the product
        or   r7, r7, r7
        or   r3, r7, r7

        ; k = 2
        ldw  r1, 8
        ldw  r2, 32
        sta  r5, 0
        or   r7, r7, r7
        sta  r5, 4
        or   r7, r7, r7
        sta  r5, 0
        or   r7, r3, r3
        sta  r5, 8
        or   r7, r7, r7
        or   r3, r7, r7

        ; k = 3
        ldw  r1, 12
        ldw  r2, 48
        sta  r5, 0
        or   r7, r7, r7
        sta  r5, 4
        or   r7, r7, r7
        sta  r5, 0
        or   r7, r3, r3
        sta  r5, 8
        or   r7, r7, r7
        or   r3, r7, r7

        ; C[i][j] = acc
        sta  r6, 0
        or   r7, r3, r3
        addi r6, r6, 4

        addi r2, r2, 4          ; next column
        subi r0, r0, 1
        pbr.nez b0, r0, 0

        addi r1, r1, 16         ; next row
        subi r4, r4, 1
        pbr.nez b1, r4, 0
        halt

; A[i][j] = (i + j + 1).0
.org ABASE
amat:   .word 0x3f800000, 0x40000000, 0x40400000, 0x40800000
        .word 0x40000000, 0x40400000, 0x40800000, 0x40a00000
        .word 0x40400000, 0x40800000, 0x40a00000, 0x40c00000
        .word 0x40800000, 0x40a00000, 0x40c00000, 0x40e00000

; B = identity
.org BBASE
bmat:   .word 0x3f800000, 0x00000000, 0x00000000, 0x00000000
        .word 0x00000000, 0x3f800000, 0x00000000, 0x00000000
        .word 0x00000000, 0x00000000, 0x3f800000, 0x00000000
        .word 0x00000000, 0x00000000, 0x00000000, 0x3f800000

.org CBASE
cmat:
