; Bubble sort of eight words, initialised in descending order.
;
; Every comparison loads both neighbours through the load queue and
; writes both back (in sorted order), so the inner loop exercises the
; data side of the memory port heavily — the worst case for I/D port
; contention and the best case for an on-chip D-cache.
;
; Register use:
;   r1  element pointer           r4  left element
;   r2  remaining passes          r5  right element
;   r3  comparisons this pass     r6  left - right

.equ BASE, 0x400
.equ N,    8

        lbr  b0, inner
        lbr  b1, doswap
        lbr  b2, cont
        lbr  b3, outer
        lim  r2, 7              ; N - 1 passes

outer:  li32 r1, BASE
        mov  r3, r2             ; shrinking inner loop

inner:  ldw  r1, 0
        ldw  r1, 4
        or   r4, r7, r7         ; left
        or   r5, r7, r7         ; right
        sub  r6, r4, r5
        pbr.gtz b1, r6, 0       ; out of order: store swapped
        sta  r1, 0              ; in order: store back as-is
        or   r7, r4, r4
        sta  r1, 4
        or   r7, r5, r5
        pbr  b2, r0, 0

doswap: sta  r1, 0
        or   r7, r5, r5
        sta  r1, 4
        or   r7, r4, r4

cont:   addi r1, r1, 4
        subi r3, r3, 1
        pbr.nez b0, r3, 0

        subi r2, r2, 1
        pbr.nez b3, r2, 0
        halt

.org BASE
values: .word 8, 7, 6, 5, 4, 3, 2, 1
