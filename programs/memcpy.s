; Copy sixteen words from SRC to DST through the load/store queues.
;
; Each trip loads one word (ldw pushes the load-address queue), then the
; `or r7, r7, r7` pops the arrived value off the load queue and pushes
; it straight onto the store-data queue, where it pairs with the address
; from `sta`.
;
; Register use:
;   r1  source pointer    r2  destination pointer    r3  trip counter

.equ SRC,   0x400
.equ DST,   0x480
.equ COUNT, 16

        li32 r1, SRC
        li32 r2, DST
        lim  r3, COUNT
        lbr  b0, loop

loop:   ldw  r1, 0
        sta  r2, 0
        or   r7, r7, r7
        addi r1, r1, 4
        addi r2, r2, 4
        subi r3, r3, 1
        pbr.nez b0, r3, 0
        halt

.org SRC
src:    .word 0x101, 0x202, 0x303, 0x404
        .word 0x505, 0x606, 0x707, 0x808
        .word 0x909, 0xa0a, 0xb0b, 0xc0c
        .word 0xd0d, 0xe0e, 0xf0f, 0x1010

.org DST
dst:
